"""STRL -> MILP compilation (Algorithm 1, Sec. 5).

The compiler walks the aggregated STRL expression with a single recursive
``gen(expr, I)`` function.  The three key ideas from the paper:

1. **Indicator variables** — every sub-expression gets a binary ``I`` saying
   whether the solver assigns resources to it.  ``max`` constrains the sum of
   child indicators by its own indicator (OR with at-most-one choice);
   ``min`` passes its *own* indicator to all children (AND).
2. **Objectives flow upward** — ``gen`` returns the sub-expression's
   objective contribution; the root's return becomes the MILP objective.
   ``min`` introduces a continuous ``V`` with ``V <= f_i`` for each child.
3. **Partition variables** — leaves create one integer variable per cluster
   partition (not per node!), with *demand* constraints tying them to the
   indicator and *supply* constraints capping total use per partition per
   time slice (added once at the end over the ``used(x, t)`` ledger).

Compilation is independent of any solver backend; the result carries enough
bookkeeping to map a MILP solution back to per-job space-time allocations.

Since the delta-compilation refactor the unit of compilation is one job: a
:class:`JobFragment` holds a job's variables, constraints, objective terms
and used-ledger entries in a *local* (fragment-relative) column space, plus
its CSR export.  :func:`assemble_batch` relocates fragments to their column
offsets, rebuilds the cross-job supply rows, and concatenates the cached
CSR blocks into the cycle model's sparse export — so a fragment compiled in
an earlier cycle can be reused verbatim by
:class:`repro.core.delta.DeltaCompiler` as long as its STRL expression and
the cycle partitioning are unchanged.  Variable names are job-scoped
(``nCk[job-3]#2``) so fragments never collide and names are stable across
cycles regardless of batch composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partitions import Partition, Partitioning
from repro.cluster.state import ClusterState
from repro.errors import SchedulerError
from repro.solver.expr import LinExpr, Variable, linear_sum
from repro.solver.model import (LE, Constraint, Model, SparseArrays,
                                SparseMatrix, _rows_to_csr)
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)


@dataclass
class LeafRecord:
    """Bookkeeping for one compiled leaf primitive.

    Maps the leaf's decision variables back to scheduling semantics so a
    MILP solution can be decoded into allocations.
    """

    job_id: str
    leaf: NCk | LnCk
    indicator: Variable
    partition_vars: dict[int, Variable]  # pid -> P_x

    def chosen_counts(self, x: np.ndarray, tol: float = 1e-6) -> dict[int, int]:
        """Per-partition node counts selected by the solution (empty if none)."""
        counts = {}
        for pid, var in self.partition_vars.items():
            v = int(round(float(x[var.index])))
            if v > 0:
                counts[pid] = v
        if isinstance(self.leaf, NCk) and x[self.indicator.index] < 0.5:
            return {}
        return counts


@dataclass(frozen=True)
class ColumnMeta:
    """Model columns of one start-time alternative, tagged with semantics.

    One record per distinct leaf indicator: the indicator column plus every
    partition variable of the leaves sharing it (a Min/Barrier gang shares
    its parent's indicator, so its leaves fold into one record).  This is
    the compiler-side mapping from model columns back to
    job / start time / option that lazy column generation and relaxation
    repair price and round against.
    """

    job_id: str
    start: int            # earliest start quantum among the leaves
    duration: int         # longest duration among the leaves
    value: float          # best leaf value (seed-ordering heuristic)
    columns: tuple[int, ...]  # indicator index + partition var indices


@dataclass
class PlannedPlacement:
    """One active leaf in the solved schedule: a space-time allocation."""

    job_id: str
    start: int                 # quanta from "now"
    duration: int              # quanta
    node_counts: dict[int, int]  # pid -> count
    value: float

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts.values())


@dataclass(frozen=True)
class ResizeCandidate:
    """A running malleable job the solver may grow or shrink this cycle.

    The job re-enters the cycle MILP with a fresh fragment (an
    :class:`~repro.strl.ast.ElasticNCk` over its admissible widths, plus a
    supply-neutral "keep" option at the current width).  Choosing *any* of
    those options — the fragment's root indicator going to 1 — returns the
    job's currently-held nodes to the supply of every affected time slice,
    mirroring :class:`PreemptionCandidate`'s freed-nodes mechanism but
    without a separate decision variable: the root indicator *is* the
    release decision.  Grow options carry the reconfiguration penalty
    folded into their leaf values, so no extra objective terms are needed
    either.
    """

    job_id: str
    #: Nodes currently held by the running job.
    nodes: frozenset[str]

    @property
    def width(self) -> int:
        """The job's current gang width."""
        return len(self.nodes)


@dataclass(frozen=True)
class PreemptionCandidate:
    """A running job the solver may choose to kill for its nodes.

    Preemption inside TetriSched is explicitly future work in the paper
    (Sec. 7.2); this extension models it MILP-natively: a binary decision
    per candidate returns the victim's nodes to the supply from the current
    quantum onward, at a ``penalty`` subtracted from the objective (the
    victim's lost value plus re-execution cost).
    """

    job_id: str
    nodes: frozenset[str]
    penalty: float


@dataclass
class CompiledBatch:
    """A compiled scheduling-cycle MILP plus decode metadata."""

    model: Model
    partitioning: Partitioning
    horizon: int
    job_indicators: dict[str, Variable]
    leaf_records: list[LeafRecord]
    job_order: list[str]
    stats: dict[str, int] = field(default_factory=dict)
    preemption_vars: dict[str, Variable] = field(default_factory=dict)
    #: Elastic extension: running jobs whose width the solver may re-plan.
    resize_candidates: dict[str, ResizeCandidate] = field(default_factory=dict)

    @property
    def column_meta(self) -> list[ColumnMeta]:
        """Per-start-time column metadata (see :class:`ColumnMeta`).

        Built lazily from the leaf records, grouping by indicator variable
        so gang leaves sharing one indicator land in one record.
        """
        by_indicator: dict[int, list[LeafRecord]] = {}
        for rec in self.leaf_records:
            by_indicator.setdefault(rec.indicator.index, []).append(rec)
        meta: list[ColumnMeta] = []
        for ind_index, recs in sorted(by_indicator.items()):
            cols = {ind_index}
            for rec in recs:
                cols.update(v.index for v in rec.partition_vars.values())
            meta.append(ColumnMeta(
                job_id=recs[0].job_id,
                start=min(rec.leaf.start for rec in recs),
                duration=max(rec.leaf.duration for rec in recs),
                value=max(rec.leaf.value for rec in recs),
                columns=tuple(sorted(cols))))
        return meta

    def lazy_column_groups(self):
        """Solver-layer :class:`~repro.solver.colgen.ColumnGroup` list.

        The translation is trivial (the solver layer does not know about
        leaves or durations) but keeps the dependency direction clean:
        the solver consumes opaque column groups, only the compiler knows
        how model columns map back to STRL semantics.
        """
        from repro.solver.colgen import ColumnGroup
        return [ColumnGroup(job_id=m.job_id, start=m.start,
                            columns=m.columns, value=m.value)
                for m in self.column_meta]

    def preempted_jobs(self, x: np.ndarray) -> list[str]:
        """Preemption candidates the solution chose to kill."""
        return [job_id for job_id, var in self.preemption_vars.items()
                if x[var.index] > 0.5]

    def resize_decisions(self, x: np.ndarray) -> dict[str, int]:
        """Chosen width per resize candidate whose fragment was activated.

        Maps job id to the new gang width (the total node count of the
        job's chosen start-0 placement).  A candidate whose root indicator
        stayed off keeps running untouched and is absent; a candidate that
        chose its *current* width picked the supply-neutral "keep" option
        (the extract stage treats it as a no-op, not a migration).
        """
        if not self.resize_candidates:
            return {}
        active = self.scheduled_jobs(x)
        widths: dict[str, int] = {}
        for p in self.decode(x):
            if p.job_id in self.resize_candidates and p.start == 0:
                widths[p.job_id] = widths.get(p.job_id, 0) + p.total_nodes
        return {job_id: w for job_id, w in widths.items()
                if job_id in active and w > 0}

    def decode(self, x: np.ndarray) -> list[PlannedPlacement]:
        """Decode a MILP solution into the set of active placements."""
        placements: list[PlannedPlacement] = []
        for rec in self.leaf_records:
            counts = rec.chosen_counts(x)
            if not counts:
                continue
            placements.append(PlannedPlacement(
                job_id=rec.job_id, start=rec.leaf.start,
                duration=rec.leaf.duration, node_counts=counts,
                value=rec.leaf.value))
        return placements

    def scheduled_jobs(self, x: np.ndarray) -> set[str]:
        """Jobs whose top-level indicator is on in the solution."""
        return {job_id for job_id, ind in self.job_indicators.items()
                if x[ind.index] > 0.5}

    def jobs_by_component(self, decomp) -> list[list[str]]:
        """Job ids whose indicator landed in each decomposition block.

        ``decomp`` is a :class:`repro.solver.decompose.Decomposition` of
        this batch's model.  Jobs in different blocks share no
        ``(partition, time-slice)`` supply constraint — they contend for
        disjoint capacity, which is why they solve independently.
        """
        owner = {var.index: job_id
                 for job_id, var in self.job_indicators.items()}
        return [[owner[int(gi)] for gi in comp.global_indices
                 if int(gi) in owner]
                for comp in decomp.components]


@dataclass
class JobFragment:
    """One job's compiled STRL slice, relocatable within a cycle model.

    Everything is expressed in a *local* column space (variable indices
    0..n-1, index 0 always the job's top-level indicator) so the fragment
    can be placed at any column offset of the assembled cycle model.  The
    fragment is valid as long as its ``expr`` and the cycle
    :class:`~repro.cluster.partitions.Partitioning` are unchanged: nothing
    in it depends on cluster *availability* (supply right-hand sides are
    rebuilt per cycle by :func:`assemble_batch`), only on partition
    membership and capacity.
    """

    job_id: str
    expr: StrlNode
    horizon: int
    #: Local-index variables; ``variables[0]`` is ``I[job_id]``.
    variables: list[Variable]
    #: Normalized constraints with local-index coefficients.
    constraints: list[Constraint]
    #: Objective contribution, local index -> coefficient (maximize sense).
    objective_coeffs: dict[int, float]
    objective_constant: float
    #: Per leaf: (leaf, indicator local index, {pid -> partition-var local}).
    leaf_specs: list[tuple[NCk | LnCk, int, dict[int, int]]]
    #: Used ledger: (pid, t) -> local partition-var indices, registration
    #: order preserved (supply-row coefficient order depends on it).
    used: dict[tuple[int, int], tuple[int, ...]]
    #: Local CSR export (minimization orientation, GE rows pre-negated).
    sparse: SparseArrays
    #: SHA-256 of the local export (cross-cycle diff accounting).
    fingerprint: str = ""

    # Materialization cache: model-ready objects built at a column offset.
    # Reused verbatim when the fragment lands at the same offset next cycle
    # (Variable/Constraint are immutable, so sharing across models is safe).
    _mat_offset: int = -1
    _mat_vars: list[Variable] | None = None
    _mat_cons: list[Constraint] | None = None
    _mat_records: list[LeafRecord] | None = None

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def materialize(self, offset: int) -> tuple[
            list[Variable], list[Constraint], list[LeafRecord]]:
        """(variables, constraints, leaf records) at global ``offset``."""
        if self._mat_offset != offset:
            if offset == 0:
                variables, constraints = self.variables, self.constraints
            else:
                variables = [
                    Variable(v.name, v.index + offset, v.lb, v.ub, v.domain)
                    for v in self.variables]
                constraints = [
                    Constraint(c.name,
                               LinExpr({i + offset: coef
                                        for i, coef in c.expr.coeffs.items()}),
                               c.sense, c.rhs)
                    for c in self.constraints]
            self._mat_vars = variables
            self._mat_cons = constraints
            self._mat_records = [
                LeafRecord(self.job_id, leaf, variables[ind],
                           {pid: variables[li] for pid, li in pmap.items()})
                for leaf, ind, pmap in self.leaf_specs]
            self._mat_offset = offset
        assert (self._mat_vars is not None and self._mat_cons is not None
                and self._mat_records is not None)
        return self._mat_vars, self._mat_cons, self._mat_records


def _stack_csr(blocks: list[tuple[SparseMatrix, int]],
               ncols: int) -> SparseMatrix:
    """Vertically stack CSR blocks, shifting each block's columns by its
    offset.  ``O(total nonzeros)`` in numpy — no per-row Python work."""
    rows = sum(int(m.shape[0]) for m, _ in blocks)
    counts = [np.diff(m.indptr) for m, _ in blocks]
    all_counts = np.concatenate(counts)
    indptr = np.zeros(rows + 1, dtype=np.int64)
    if all_counts.size:
        np.cumsum(all_counts, out=indptr[1:])
    indices = np.concatenate(
        [(m.indices + off) if off else m.indices for m, off in blocks])
    data = np.concatenate([m.data for m, _ in blocks])
    return SparseMatrix((rows, ncols), indptr,
                        indices.astype(np.int64, copy=False), data)


def _assemble_sparse(fragments: list[JobFragment],
                     preemptible: list["PreemptionCandidate"],
                     supply_rows: list[tuple[dict, float]],
                     obj_constant: float, n: int) -> SparseArrays:
    """Concatenate fragment CSR blocks + supply rows into the cycle export.

    Produces arrays bit-equal to ``Model.to_sparse_arrays()`` on the
    assembled model: fragment blocks come from each scratch model's own
    canonical export (same within-row coefficient order), the supply block
    goes through the same ``_rows_to_csr`` packer, and row/column order
    matches the assembled model's constraint/variable order by
    construction.  ``delta_mode=verify`` recomputes the canonical export
    and asserts exactly this equality every cycle.
    """
    c_parts = [frag.sparse.c for frag in fragments]
    lb_parts = [frag.sparse.lb for frag in fragments]
    ub_parts = [frag.sparse.ub for frag in fragments]
    int_parts = [frag.sparse.integrality for frag in fragments]
    if preemptible:
        n_r = len(preemptible)
        # Maximize-sense objective coefficient -penalty => c = +penalty.
        c_parts.append(np.array([float(cand.penalty) for cand in preemptible]))
        lb_parts.append(np.zeros(n_r))
        ub_parts.append(np.ones(n_r))
        int_parts.append(np.ones(n_r, dtype=bool))
    supply_m, supply_b = _rows_to_csr(supply_rows, n,
                                      [1.0] * len(supply_rows))
    ub_blocks: list[tuple[SparseMatrix, int]] = []
    eq_blocks: list[tuple[SparseMatrix, int]] = []
    b_ub_parts: list[np.ndarray] = []
    b_eq_parts: list[np.ndarray] = []
    off = 0
    for frag in fragments:
        ub_blocks.append((frag.sparse.a_ub, off))
        eq_blocks.append((frag.sparse.a_eq, off))
        b_ub_parts.append(frag.sparse.b_ub)
        b_eq_parts.append(frag.sparse.b_eq)
        off += frag.num_variables
    ub_blocks.append((supply_m, 0))
    b_ub_parts.append(supply_b)
    return SparseArrays(
        c=np.concatenate(c_parts),
        obj_constant=obj_constant, obj_sign=-1.0,
        a_ub=_stack_csr(ub_blocks, n), b_ub=np.concatenate(b_ub_parts),
        a_eq=_stack_csr(eq_blocks, n),
        b_eq=(np.concatenate(b_eq_parts) if b_eq_parts else np.zeros(0)),
        lb=np.concatenate(lb_parts), ub=np.concatenate(ub_parts),
        integrality=np.concatenate(int_parts))


def assemble_batch(fragments: list[JobFragment], partitioning: Partitioning,
                   horizon: int, state: ClusterState, quantum_s: float,
                   now: float,
                   preemptible: list[PreemptionCandidate] | None = None,
                   resizable: list[ResizeCandidate] | None = None
                   ) -> CompiledBatch:
    """Assemble compiled job fragments into one cycle :class:`CompiledBatch`.

    Both the from-scratch path (:meth:`StrlCompiler.compile`) and the
    cross-cycle delta path (:class:`repro.core.delta.DeltaCompiler`) end
    here, so the two produce bit-identical models by construction; the only
    way they can diverge is a stale cached fragment, which is exactly what
    ``delta_mode=verify`` checks for.

    Per-cycle work is the part that depends on cluster availability: the
    supply rows (``sum of P in used(x,t) <= avail(x,t)`` plus nodes freed
    by chosen preemptions or width re-plans) and the preemption decision
    variables.  ``resizable`` entries add no variables: each candidate's
    fragment root indicator doubles as the release decision, freeing the
    job's currently-held nodes in every supply row they appear in.
    """
    preemptible = preemptible or []
    resizable = resizable or []
    model = Model("tetrisched-cycle")
    job_indicators: dict[str, Variable] = {}
    records: list[LeafRecord] = []
    used: dict[tuple[int, int], list[int]] = {}
    obj_coeffs: dict[int, float] = {}
    obj_constant = 0.0
    offset = 0
    frag_records: dict[str, list[LeafRecord]] = {}
    for frag in fragments:
        variables, constraints, recs = frag.materialize(offset)
        model.adopt_variables(variables)
        model.adopt_constraints(constraints)
        job_indicators[frag.job_id] = variables[0]
        frag_records[frag.job_id] = recs
        records.extend(recs)
        for idx, coef in frag.objective_coeffs.items():
            obj_coeffs[idx + offset] = coef
        obj_constant += frag.objective_constant
        for key, local_indices in frag.used.items():
            used.setdefault(key, []).extend(i + offset
                                            for i in local_indices)
        offset += frag.num_variables

    # Preemption extension: binary kill-decision per candidate.
    preemption_vars: dict[str, Variable] = {}
    victim_busy: dict[str, dict[str, int]] = {}
    if preemptible or resizable:
        busy = state.busy_quanta(now, quantum_s)
        for cand in preemptible:
            r = model.add_binary(f"R[{cand.job_id}]")
            preemption_vars[cand.job_id] = r
            victim_busy[cand.job_id] = {n: busy.get(n, 0) for n in cand.nodes}
            obj_coeffs[r.index] = obj_coeffs.get(r.index, 0.0) - cand.penalty

    # Elastic extension: the release decision of a width re-plan is the
    # candidate's own fragment root indicator (no new variable, no extra
    # objective term — grow penalties live in the fragment's leaf values).
    resize_roots: dict[str, int] = {}
    active_resizes: list[ResizeCandidate] = []
    supply_cons: list[Constraint] = []
    supply_rows: list[tuple[dict, float]] = []
    for cand in resizable:
        ind = job_indicators.get(cand.job_id)
        if ind is None:
            continue  # every width option was culled this cycle
        resize_roots[cand.job_id] = ind.index
        victim_busy[cand.job_id] = {n: busy.get(n, 0) for n in cand.nodes}
        active_resizes.append(cand)
        # Commit row: the root indicator both grants the freed-nodes
        # supply credit and must therefore imply an actual width choice —
        # ``I <= sum(leaf indicators)``.  Without it the solver could
        # activate the root for the credit alone, a phantom release of a
        # still-running gang.  (A single-leaf fragment already ties the
        # root to its demand row.)
        leaf_inds = {rec.indicator.index
                     for rec in frag_records[cand.job_id]}
        if leaf_inds != {ind.index}:
            coeffs = {i: -1.0 for i in leaf_inds}
            coeffs[ind.index] = coeffs.get(ind.index, 0.0) + 1.0
            con = Constraint(f"resize-commit[{cand.job_id}]",
                             LinExpr(coeffs, 0.0), LE, 0.0)
            supply_cons.append(con)
            supply_rows.append((con.expr.coeffs, con.rhs))

    # Supply constraints: sum of P in used(x, t) <= avail(x, t)
    # (+ nodes freed by any chosen preemptions or width re-plans).
    # Drained nodes never return to supply, even when their holder is
    # preempted or resized.
    drained = getattr(state, "drained_nodes", frozenset())
    for part in partitioning.partitions:
        profile = state.availability_profile(
            part.nodes, horizon, now, quantum_s)
        for t in range(horizon):
            users = used.get((part.pid, t))
            if not users:
                continue
            coeffs: dict[int, float] = {}
            for gi in users:
                coeffs[gi] = coeffs.get(gi, 0.0) + 1.0
            for cand in preemptible:
                freed = sum(
                    1 for n in cand.nodes
                    if n in part.nodes and n not in drained
                    and victim_busy[cand.job_id][n] > t)
                if freed:
                    ri = preemption_vars[cand.job_id].index
                    coeffs[ri] = coeffs.get(ri, 0.0) - freed
            for cand in active_resizes:
                freed = sum(
                    1 for n in cand.nodes
                    if n in part.nodes and n not in drained
                    and victim_busy[cand.job_id][n] > t)
                if freed:
                    ri = resize_roots[cand.job_id]
                    coeffs[ri] = coeffs.get(ri, 0.0) - freed
            con = Constraint(f"supply[p{part.pid},t{t}]",
                             LinExpr(coeffs, 0.0), LE, float(profile[t]))
            supply_cons.append(con)
            supply_rows.append((con.expr.coeffs, con.rhs))
    model.adopt_constraints(supply_cons)
    model.set_objective(LinExpr(obj_coeffs, obj_constant), sense="maximize")
    model.install_sparse_arrays(_assemble_sparse(
        fragments, preemptible, supply_rows, obj_constant,
        model.num_variables))
    return CompiledBatch(
        model=model, partitioning=partitioning, horizon=horizon,
        job_indicators=job_indicators, leaf_records=records,
        job_order=[frag.job_id for frag in fragments],
        stats=model.stats(), preemption_vars=preemption_vars,
        resize_candidates={cand.job_id: cand for cand in active_resizes})


class StrlCompiler:
    """Compiles a batch of per-job STRL expressions into one MILP.

    Parameters
    ----------
    state:
        Current cluster availability view; drives the supply constraints'
        right-hand sides (``avail(x, t)``).
    quantum_s:
        Length of one time quantum in seconds.
    now:
        Absolute time of this scheduling cycle.
    """

    def __init__(self, state: ClusterState, quantum_s: float,
                 now: float = 0.0, minimal_partitioning: bool = True) -> None:
        self.state = state
        self.quantum_s = quantum_s
        self.now = now
        #: Ablation knob: when False, every node is its own partition,
        #: disabling the paper's dynamic-partitioning optimization (TR
        #: Appendix A).  Schedules are identical; MILPs are much larger.
        self.minimal_partitioning = minimal_partitioning

    def compile(self, batch: list[tuple[str, StrlNode]],
                preemptible: list[PreemptionCandidate] | None = None,
                resizable: list[ResizeCandidate] | None = None
                ) -> CompiledBatch:
        """Compile ``[(job_id, strl_expr), ...]`` into a :class:`CompiledBatch`.

        The batch is aggregated under the top-level SUM (global scheduling);
        supply constraints are added for every (partition, time slice) pair
        touched by any leaf.

        ``preemptible`` (extension, see :class:`PreemptionCandidate`) adds a
        binary kill-decision per running victim: choosing it returns the
        victim's still-held nodes to the supply of every affected time slice
        at a value penalty in the objective.

        ``resizable`` (elastic extension, see :class:`ResizeCandidate`)
        marks running malleable jobs whose batch fragment doubles as a
        width re-plan: activating the fragment frees the job's current
        nodes in the supply rows.
        """
        if not batch:
            raise SchedulerError("cannot compile an empty batch")
        seen_ids = set()
        for job_id, _ in batch:
            if job_id in seen_ids:
                raise SchedulerError(f"duplicate job id {job_id!r} in batch")
            seen_ids.add(job_id)

        partitioning = self.build_partitioning([expr for _, expr in batch])
        fragments = [self.compile_fragment(job_id, expr, partitioning)
                     for job_id, expr in batch]
        horizon = max(frag.horizon for frag in fragments)
        return assemble_batch(fragments, partitioning, horizon, self.state,
                              self.quantum_s, self.now,
                              preemptible=preemptible, resizable=resizable)

    def build_partitioning(self, exprs: list[StrlNode]) -> Partitioning:
        """Dynamic minimal partitioning over a batch's equivalence sets."""
        eq_sets = [leaf.nodes for expr in exprs for leaf in expr.leaves()]
        if self.minimal_partitioning:
            return Partitioning(self.state.universe, eq_sets)
        # Ablation: singleton partitions (one integer variable per node
        # per leaf) — the naive formulation the paper optimizes away.
        singletons = [frozenset({n}) for n in self.state.universe]
        return Partitioning(self.state.universe, eq_sets + singletons)

    def compile_fragment(self, job_id: str, expr: StrlNode,
                         partitioning: Partitioning) -> JobFragment:
        """Compile one job's STRL into a relocatable :class:`JobFragment`.

        Runs Algorithm 1's ``gen`` against a throwaway scratch model whose
        column space is the fragment's local index space, then snapshots
        variables, constraints, objective terms, leaf bookkeeping, the
        used ledger and the scratch model's own CSR export.  Nothing here
        reads cluster availability or ``now`` — fragments stay valid
        across cycles while ``expr`` and ``partitioning`` are unchanged.
        """
        scratch = Model(f"frag[{job_id}]")
        self._model = scratch
        self._partitioning = partitioning
        self._used: dict[tuple[int, int], list[Variable]] = {}
        self._records: list[LeafRecord] = []
        self._counter = 0
        self._job_id = job_id
        indicator = scratch.add_binary(f"I[{job_id}]")
        objective = self._gen(expr, indicator)
        scratch.set_objective(objective, sense="maximize")
        sparse = scratch.to_sparse_arrays()
        from repro.solver.parallel import fingerprint_arrays
        fragment = JobFragment(
            job_id=job_id, expr=expr, horizon=expr.horizon(),
            variables=list(scratch.variables),
            constraints=list(scratch.constraints),
            objective_coeffs=dict(scratch.objective.coeffs),
            objective_constant=scratch.objective.constant,
            leaf_specs=[
                (rec.leaf, rec.indicator.index,
                 {pid: v.index for pid, v in rec.partition_vars.items()})
                for rec in self._records],
            used={key: tuple(v.index for v in pvars)
                  for key, pvars in self._used.items()},
            sparse=sparse,
            fingerprint=fingerprint_arrays(sparse).exact)
        # Release builder state.
        del self._model, self._partitioning, self._used, self._records
        return fragment

    # -- Algorithm 1's gen(expr, I) -----------------------------------------
    def _fresh(self, tag: str) -> str:
        # Job-scoped naming: the counter restarts per fragment and the tag
        # embeds the job id, so names are unique across any batch and
        # *stable* across cycles no matter which jobs come and go.
        self._counter += 1
        return f"{tag}[{self._job_id}]#{self._counter}"

    def _gen(self, expr: StrlNode, indicator: Variable) -> LinExpr:
        if isinstance(expr, NCk):
            return self._gen_nck(expr, indicator)
        if isinstance(expr, LnCk):
            return self._gen_lnck(expr, indicator)
        if isinstance(expr, Max):
            return self._gen_choice(expr, indicator, at_most=1)
        if isinstance(expr, ElasticNCk):
            # Desugars to max over per-width nCk options: exactly the
            # paper's combinators, so the per-(width, start) indicators
            # become ordinary column groups for the colgen/repair path.
            return self._gen_choice(expr, indicator, at_most=1)
        if isinstance(expr, Sum):
            return self._gen_choice(expr, indicator, at_most=len(expr.subexprs))
        if isinstance(expr, Min):
            return self._gen_min(expr, indicator)
        if isinstance(expr, Scale):
            return self._gen(expr.subexpr, indicator) * expr.factor
        if isinstance(expr, Barrier):
            return self._gen_barrier(expr, indicator)
        raise SchedulerError(f"cannot compile STRL node {expr!r}")

    def _leaf_partition_vars(self, leaf: NCk | LnCk,
                             tag: str) -> dict[int, Variable]:
        """Create partition variables and register them in the used ledger."""
        parts = self._partitioning.partitions_of(leaf.nodes)
        # When the availability provider knows about node-level fragmentation
        # (the greedy mode's PlanAccumulator), cap each partition variable by
        # the number of nodes free for the leaf's *whole* interval.  Per-slice
        # supply alone can overestimate capacity once tentative reservations
        # create non-prefix busy intervals.
        interval_cap = getattr(self.state, "interval_free_count", None)
        pvars: dict[int, Variable] = {}
        for part in parts:
            ub = min(leaf.k, part.capacity)
            if interval_cap is not None:
                ub = min(ub, interval_cap(part.nodes, leaf.start, leaf.duration))
            p = self._model.add_integer(
                f"P[{tag},p{part.pid}]", lb=0, ub=ub)
            pvars[part.pid] = p
            for t in range(leaf.start, leaf.start + leaf.duration):
                self._used.setdefault((part.pid, t), []).append(p)
        return pvars

    def _gen_nck(self, leaf: NCk, indicator: Variable) -> LinExpr:
        tag = self._fresh("nCk")
        pvars = self._leaf_partition_vars(leaf, tag)
        # Demand: sum_x P_x == k * I.
        self._model.add_constraint(
            linear_sum(pvars.values()), "==", leaf.k * indicator,
            name=f"demand[{tag}]")
        self._records.append(LeafRecord(self._job_id, leaf, indicator, pvars))
        return LinExpr({indicator.index: leaf.value})

    def _gen_lnck(self, leaf: LnCk, indicator: Variable) -> LinExpr:
        tag = self._fresh("LnCk")
        pvars = self._leaf_partition_vars(leaf, tag)
        # Demand: sum_x P_x <= k * I (any count up to k).
        self._model.add_constraint(
            linear_sum(pvars.values()), "<=", leaf.k * indicator,
            name=f"demand[{tag}]")
        self._records.append(LeafRecord(self._job_id, leaf, indicator, pvars))
        # Value is linear in the count: v * sum_x P_x / k.
        return linear_sum(pvars.values()) * (leaf.value / leaf.k)

    def _gen_choice(self, expr: Max | Sum | ElasticNCk, indicator: Variable,
                    at_most: int) -> LinExpr:
        objective = LinExpr()
        child_inds = []
        for child in expr.children():
            ci = self._model.add_binary(self._fresh("I"))
            child_inds.append(ci)
            objective = objective + self._gen(child, ci)
        # max: sum I_i <= I; sum: sum I_i <= n * I.
        self._model.add_constraint(
            linear_sum(child_inds), "<=", at_most * indicator,
            name=self._fresh("choice"))
        return objective

    def _gen_min(self, expr: Min, indicator: Variable) -> LinExpr:
        v = self._model.add_continuous(self._fresh("V"), lb=0.0)
        for child in expr.subexprs:
            f_i = self._gen(child, indicator)  # children share parent's I
            self._model.add_constraint(v, "<=", f_i, name=self._fresh("min"))
        return LinExpr({v.index: 1.0})

    def _gen_barrier(self, expr: Barrier, indicator: Variable) -> LinExpr:
        f = self._gen(expr.subexpr, indicator)
        # v * I <= f: only yield the threshold if the child reaches it.
        self._model.add_constraint(
            expr.threshold * indicator, "<=", f, name=self._fresh("barrier"))
        return LinExpr({indicator.index: expr.threshold})
