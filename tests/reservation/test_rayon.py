"""Tests for Rayon-style admission control."""

import pytest

from repro.errors import ReservationError
from repro.reservation import RayonReservationSystem
from repro.strl import Atom, Window


@pytest.fixture()
def rayon():
    return RayonReservationSystem(capacity=4, step_s=10)


class TestAdmission:
    def test_accept_when_capacity_free(self, rayon):
        d = rayon.submit("j1", k=2, duration_s=20, arrival_s=0, deadline_s=60)
        assert d.accepted and d.start_s == 0.0
        assert rayon.is_accepted("j1")

    def test_reject_when_full(self, rayon):
        rayon.submit("j1", k=4, duration_s=60, arrival_s=0, deadline_s=60)
        d = rayon.submit("j2", k=1, duration_s=20, arrival_s=0, deadline_s=50)
        assert not d.accepted
        assert not rayon.is_accepted("j2")

    def test_deferred_acceptance(self, rayon):
        rayon.submit("j1", k=4, duration_s=30, arrival_s=0, deadline_s=100)
        d = rayon.submit("j2", k=2, duration_s=20, arrival_s=0, deadline_s=100)
        assert d.accepted and d.start_s == 30.0

    def test_duplicate_submission_rejected(self, rayon):
        rayon.submit("j1", k=1, duration_s=10, arrival_s=0, deadline_s=100)
        with pytest.raises(ReservationError):
            rayon.submit("j1", k=1, duration_s=10, arrival_s=0, deadline_s=100)

    def test_never_submitted_is_not_accepted(self, rayon):
        assert not rayon.is_accepted("ghost")
        with pytest.raises(ReservationError):
            rayon.decision_of("ghost")

    def test_start_accessor_on_rejection(self, rayon):
        rayon.submit("j1", k=4, duration_s=60, arrival_s=0, deadline_s=60)
        d = rayon.submit("j2", k=4, duration_s=60, arrival_s=0, deadline_s=60)
        with pytest.raises(ReservationError):
            _ = d.start_s


class TestRdlInterface:
    def test_submit_rdl(self, rayon):
        w = Window(0, 60, Atom("<16GB,8c>", k=2, gang=2, duration_s=20))
        d = rayon.submit_rdl("j1", w, arrival_s=0.0)
        assert d.accepted

    def test_submit_rdl_respects_window_start(self, rayon):
        w = Window(30, 100, Atom("b", k=2, gang=2, duration_s=20))
        d = rayon.submit_rdl("j1", w, arrival_s=0.0)
        assert d.accepted and d.start_s >= 30.0


class TestCapacityGuarantees:
    def test_guaranteed_capacity(self, rayon):
        rayon.submit("j1", k=3, duration_s=20, arrival_s=0, deadline_s=60)
        assert rayon.guaranteed_capacity_at(10.0) == 3
        assert rayon.guaranteed_capacity_at(30.0) == 0

    def test_early_completion_releases_tail(self, rayon):
        rayon.submit("j1", k=3, duration_s=40, arrival_s=0, deadline_s=60)
        rayon.on_job_complete("j1", at_s=20.0)
        assert rayon.guaranteed_capacity_at(30.0) == 0

    def test_completion_of_rejected_job_is_noop(self, rayon):
        rayon.submit("j1", k=4, duration_s=60, arrival_s=0, deadline_s=60)
        rayon.submit("j2", k=4, duration_s=60, arrival_s=0, deadline_s=60)
        rayon.on_job_complete("j2", at_s=10.0)  # rejected job; no crash
