"""The public scheduler facade: one way to build and drive a scheduler.

Before this module existed, the simulator adapter, the async service and
the CLI each hand-rolled their own ``TetriSched(...)`` wiring.
:class:`Scheduler` is the single supported entry point now::

    from repro.api import Scheduler
    from repro.cluster import Cluster

    with Scheduler.open(Cluster.build(racks=8, nodes_per_rack=32)) as api:
        api.submit(request)               # a repro.JobRequest
        result = api.run_cycle()          # clock advances by cycle_s
        print(api.stats().objective)

``open`` accepts either a built :class:`~repro.cluster.cluster.Cluster`
or a compact topology spec string (``"8x32"`` = 8 racks of 32 nodes,
``"8x32:2"`` = the first 2 racks GPU-enabled), and a possibly *partial*
:class:`~repro.core.scheduler.TetriSchedConfig` — unset fields inherit
the documented defaults and the merged config is validated up front
(:func:`~repro.core.scheduler.resolve_config`).

Direct ``TetriSched(...)`` construction keeps working for one release
behind a ``DeprecationWarning``; everything else in the repo constructs
through this facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.scheduler import (CycleResult, CycleStats, JobRequest,
                                  TetriSched, TetriSchedConfig)
from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.state import ClusterState


def _parse_cluster_spec(spec: str) -> Cluster:
    """``"RxN"`` or ``"RxN:G"`` -> a built cluster (G leading GPU racks)."""
    gpu_racks = 0
    body = spec
    if ":" in spec:
        body, _, gpu = spec.partition(":")
        gpu_racks = int(gpu)
    racks, _, nodes = body.partition("x")
    if not nodes:
        raise SchedulerError(
            f"bad cluster spec {spec!r}: expected 'RACKSxNODES[:GPU_RACKS]'"
            f" like '8x32' or '8x32:2'")
    return Cluster.build(racks=int(racks), nodes_per_rack=int(nodes),
                         gpu_racks=gpu_racks)


class Scheduler:
    """A handle on one scheduler instance — the only supported entry point.

    Build with :meth:`open`; drive with :meth:`submit` /
    :meth:`run_cycle` / :meth:`job_finished`; inspect with :meth:`stats`;
    release with :meth:`close` (or use as a context manager).  The
    wrapped :class:`~repro.core.scheduler.TetriSched` stays reachable as
    :attr:`core` for code that needs scheduler internals (the simulator
    does), so the facade adds a contract, not a wall.
    """

    def __init__(self, core: TetriSched) -> None:
        # Internal: build through Scheduler.open(), which owns cluster
        # parsing and config resolution.
        self._core = core
        self._closed = False
        self._next_now = 0.0

    # -- construction -------------------------------------------------------
    @classmethod
    def open(cls, cluster: Cluster | str,
             config: TetriSchedConfig | None = None) -> "Scheduler":
        """Build a scheduler over ``cluster`` under ``config``.

        ``cluster`` is a built :class:`~repro.cluster.cluster.Cluster` or
        a spec string (``"8x32"``, ``"8x32:2"``); ``config`` may be
        ``None`` (documented defaults), partial
        (:meth:`TetriSchedConfig.partial` — unset fields inherit), or
        fully concrete.  The resolved config is validated before any
        state is built, so incoherent combinations fail here, not
        mid-cycle.
        """
        if isinstance(cluster, str):
            cluster = _parse_cluster_spec(cluster)
        return cls(TetriSched._from_api(cluster, config))

    # -- the underlying pieces ----------------------------------------------
    @property
    def core(self) -> TetriSched:
        """The wrapped scheduler (escape hatch for internals)."""
        return self._core

    @property
    def config(self) -> TetriSchedConfig:
        """The resolved, validated configuration in force."""
        return self._core.config

    @property
    def cluster(self) -> Cluster:
        return self._core.cluster

    @property
    def state(self) -> "ClusterState":
        """The scheduler's space-time view of cluster availability."""
        return self._core.state

    # -- job lifecycle -------------------------------------------------------
    def submit(self, request: JobRequest) -> None:
        """Queue a job for the next scheduling cycle."""
        self._check_open()
        self._core.submit(request)

    def cancel(self, job_id: str) -> None:
        """Request cancellation of a queued or running job (thread-safe)."""
        self._check_open()
        self._core.cancel(job_id)

    def job_finished(self, job_id: str, now: float | None = None
                     ) -> frozenset[str]:
        """Report a job's completion; returns the freed node set."""
        self._check_open()
        return self._core.on_job_finished(
            job_id, self._next_now if now is None else now)

    # -- scheduling ----------------------------------------------------------
    def run_cycle(self, now: float | None = None) -> CycleResult:
        """Run one scheduling cycle and return its launch decisions.

        With ``now=None`` the facade keeps its own clock, advancing by
        ``config.cycle_s`` per call (the common simulator-less usage);
        passing explicit times (monotonically non-decreasing) overrides
        it and re-anchors the internal clock.
        """
        self._check_open()
        if now is None:
            now = self._next_now
        result = self._core.run_cycle(now)
        self._next_now = now + self._core.config.cycle_s
        return result

    # -- observability -------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return self._core.pending_count

    def stats(self) -> CycleStats | None:
        """The most recent cycle's stats record (``None`` before any)."""
        history = self._core.cycle_history
        return history[-1] if history else None

    @property
    def cycle_history(self) -> list[CycleStats]:
        """Every cycle's stats, oldest first."""
        return self._core.cycle_history

    # -- teardown ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the handle (idempotent); further scheduling calls raise.

        The scheduler is in-process state, so closing releases nothing at
        the OS level — it marks the handle finished and protects against
        use-after-close bugs in long-lived hosts (the service closes its
        facade on drain).
        """
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise SchedulerError("Scheduler handle is closed")

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"Scheduler({state}, nodes={len(self._core.cluster)}, "
                f"pending={self._core.pending_count})")
