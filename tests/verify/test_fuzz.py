"""Differential fuzz harness: fixed instances, seed-file replay, smoke run."""

import pytest

from repro.verify.fuzz import (AGREEMENT_TOL, DifferentialFailure,
                               check_instance, replay_file, run_fuzz)
from repro.verify.instance import FuzzInstance, FuzzJob


def spec(**kw):
    defaults = dict(
        racks=2, nodes_per_rack=2, quantum_s=10.0, plan_ahead_quanta=3,
        jobs=(FuzzJob("a", k=2, duration_q=1, value=9.0),
              FuzzJob("b", k=1, duration_q=2, value=4.0, rack=0,
                      fallback=True)),
        busy=((1, 1),))
    defaults.update(kw)
    return FuzzInstance(**defaults)


class TestCheckInstance:
    def test_fixed_instance_all_configurations_agree(self):
        summary = check_instance(spec())
        assert not summary["trivial"]
        assert summary["jobs"] == 2
        # Every pure configuration ran; scipy mirrors when available.
        objectives = summary["objectives"]
        assert {"pure-dense", "pure-sparse", "pure-decomposed",
                "pure-parallel", "pure-cached"} <= set(objectives)
        ref = objectives["pure-dense"]
        for name, obj in objectives.items():
            assert obj == pytest.approx(ref, abs=AGREEMENT_TOL), name

    def test_empty_instance_is_trivial(self):
        summary = check_instance(spec(jobs=()))
        assert summary == {"trivial": True}

    def test_unreachable_deadlines_are_trivial(self):
        # Deadline 0 culls every job at generation time -> compiled None.
        jobs = tuple(
            FuzzJob(j.job_id, j.k, j.duration_q, j.value, deadline_q=0)
            for j in spec().jobs)
        assert check_instance(spec(jobs=jobs)) == {"trivial": True}

    def test_differential_failure_is_assertion(self):
        # CI treats harness mismatches as test failures, not errors.
        assert issubclass(DifferentialFailure, AssertionError)


class TestSeedFileRoundTrip:
    def test_json_round_trip_is_identity(self):
        s = spec()
        assert FuzzInstance.from_json(s.to_json()) == s

    def test_replay_file(self, tmp_path):
        path = tmp_path / "seed.json"
        path.write_text(spec().to_json())
        assert replay_file(path) == 0

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "seed.json"
        s = spec()
        path.write_text(s.to_json())
        assert FuzzInstance.load(path) == s


@pytest.mark.fuzz
class TestFuzzSmoke:
    """Bounded end-to-end runs; excluded from tier-1 by the marker."""

    def test_seeded_run_passes(self, tmp_path):
        rc = run_fuzz(seed=0, iterations=5,
                      seed_file=str(tmp_path / "fail.json"))
        assert rc == 0
        assert not (tmp_path / "fail.json").exists()

    def test_time_budget_short_circuits(self, tmp_path):
        rc = run_fuzz(seed=1, iterations=5, time_budget=0.0,
                      seed_file=str(tmp_path / "fail.json"))
        assert rc == 0
