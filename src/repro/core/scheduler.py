"""The TetriSched scheduler core (Sec. 3).

On each scheduling cycle TetriSched:

1. generates a STRL expression per pending job, replicating placement
   options over the plan-ahead window and culling valueless options;
2. aggregates them under the top-level SUM (global scheduling) and compiles
   to a MILP (Algorithm 1), with supply drawn from its space-time view of
   cluster availability;
3. solves the MILP (optionally warm-started from the previous cycle's
   solution shifted forward in time, Sec. 3.2.2) — after splitting it into
   independent connected components that solve as separate, smaller
   branch-and-bound problems (:mod:`repro.solver.decompose`);
4. extracts and launches only the placements scheduled to start *now*;
   everything else is reconsidered from scratch next cycle — this is the
   adaptive re-planning that makes TetriSched robust to mis-estimates and
   new arrivals (Sec. 2.3.3).

The cycle itself is an explicit staged pipeline (:mod:`repro.pipeline`):
``StrlGeneration -> Compilation -> ModelBuild -> Decompose -> Solve ->
Extract``; :meth:`TetriSched.run_cycle` is a thin driver around it that
owns queue/state bookkeeping and the per-cycle stats record.

The ablation configurations of Table 2 are expressed as config flags:

* ``global_scheduling=False`` -> TetriSched-NG: jobs are solved one at a
  time in priority-queue order, each seeing the tentative plan of its
  predecessors;
* ``heterogeneity_aware=False`` -> TetriSched-NH: placement preferences are
  collapsed to a whole-cluster equivalence set with the conservative
  (slowed-down) runtime estimate;
* ``plan_ahead_s=0`` -> TetriSched-NP (alsched): jobs may only start now.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterState
from repro.core.allocation import Allocation, PlanAccumulator
from repro.core.compiler import CompiledBatch, StrlCompiler
from repro.core.queues import PriorityClass, PriorityQueues
from repro.errors import SchedulerError
from repro.pipeline.context import CycleContext
from repro.pipeline.driver import global_pipeline, greedy_pipeline
from repro.solver.backend import make_backend
from repro.solver.options import UNSET, SolveOptions, is_set
from repro.solver.parallel import ComponentCache
from repro.strl.ast import Max, NCk, StrlNode
from repro.strl.generator import (DEFAULT_EARLINESS_BIAS, SpaceOption,
                                  generate_elastic_strl, generate_job_strl,
                                  quantize_duration)
from repro.valuefn import ValueFunction

#: Valid values of the mode-style config fields (``config.validate()``).
SOLVE_MODES = ("exact", "repair", "auto")
SHARD_MODES = ("off", "racks", "auto")


@dataclass(frozen=True)
class JobRequest:
    """A pending job as seen by the scheduler.

    ``options`` carry *estimated* durations (possibly mis-estimated); the
    simulator computes true runtimes separately.  ``deadline`` is used for
    option culling; ``priority`` orders the greedy policy's queues.
    """

    job_id: str
    options: tuple[SpaceOption, ...]
    value_fn: ValueFunction
    priority: PriorityClass
    submit_time: float
    deadline: float | None = None
    #: Malleable gang: ``options`` form a width ladder (one option per
    #: admissible gang width over one equivalence set, narrower widths
    #: carrying longer durations).  With ``config.elastic_mode`` the job
    #: compiles to an :class:`~repro.strl.ast.ElasticNCk` per start and,
    #: once running, re-enters every cycle with grow/shrink/keep options
    #: (per-cycle width re-planning).  Without it the ladder is still
    #: schedulable — the solver picks one width at admission and the job
    #: stays rigid.
    elastic: bool = False

    def __post_init__(self) -> None:
        if not self.options:
            raise SchedulerError(f"job {self.job_id!r} has no placement options")


@dataclass
class TetriSchedConfig:
    """Tunable parameters (defaults follow the paper where it states them)."""

    #: Time quantum used to discretize the plan-ahead window.
    quantum_s: float = 4.0
    #: Scheduling cycle period ("TetriSched cycle period is set to 4s").
    cycle_s: float = 4.0
    #: Plan-ahead window in seconds (Fig. 11 sweeps 0..144).
    plan_ahead_s: float = 96.0
    #: Global (MILP over all pending jobs) vs greedy one-at-a-time (-NG).
    global_scheduling: bool = True
    #: Soft-constraint awareness (-NH when False).
    heterogeneity_aware: bool = True
    #: Deadline/zero-value culling of options and jobs.
    cull: bool = True
    #: Solver backend name (see repro.solver.backend.make_backend).  The
    #: default honors the ``REPRO_BACKEND`` environment variable so test
    #: matrices (CI) can pin ``pure`` vs ``scipy`` without code changes.
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "auto"))
    #: Relative optimality gap ("within 10% of the optimal" in the paper).
    rel_gap: float = 0.01
    #: Wall-clock budget per solve, seconds (None = unlimited).
    solver_time_limit: float | None = None
    #: Solve strategy: ``"exact"`` (branch and bound), ``"repair"`` (LP
    #: relaxation + rounding repair with lazy start-time columns and an
    #: audited gap), or ``"auto"`` (repair, escalating to exact when the
    #: audited gap exceeds :attr:`repair_gap_threshold`).
    solve_mode: str = "exact"
    #: Audited-gap ceiling before ``"auto"`` escalates to exact search.
    repair_gap_threshold: float = 0.05
    #: Worker processes for solving decomposed MILP components concurrently
    #: (0/1 = sequential in-process).  See :mod:`repro.solver.parallel`.
    solver_workers: int = 0
    #: Memoize per-component solver results across cycles keyed by a
    #: canonical model fingerprint; exact hits replay the cached result,
    #: structural near-misses donate a warm-start seed (Sec. 3.2.2).
    component_cache: bool = False
    #: Seed each solve with the previous cycle's shifted solution.
    warm_start: bool = True
    #: Split the cycle MILP into independent connected components and solve
    #: each as its own (much smaller) branch-and-bound problem.  Schedule-
    #: preserving: the recombined optimum equals the monolithic one.
    decomposition: bool = True
    #: EXTENSION (paper future work, Sec. 7.2): let the MILP preempt
    #: running best-effort jobs when the freed nodes buy more SLO value
    #: than the preemption penalty costs.
    enable_preemption: bool = False
    #: Objective penalty per preemption (in value units; keep above the
    #: best-effort base value so kills only happen for SLO-value gains).
    preemption_penalty: float = 5.0
    #: EXTENSION: per-cycle width re-planning for malleable gangs
    #: (``JobRequest.elastic``).  Pending elastic jobs compile to
    #: :class:`~repro.strl.ast.ElasticNCk` width ladders; *running* elastic
    #: jobs re-enter every global cycle with supply-neutral keep,
    #: quanta-releasing shrink, and penalty-charged grow options, letting
    #: the MILP trade a running gang's width against everything else it
    #: could do with those nodes.  Requires ``global_scheduling``; under
    #: sharding only the pending-side ladders apply (resizes need the
    #: monolithic batch).
    elastic_mode: bool = False
    #: Objective penalty per grow reconfiguration (analogous to
    #: ``preemption_penalty``): widening a running gang forces a restart /
    #: data reshuffle, so grow options pay this much value up front.
    #: Shrinks are free — they only release quanta back to the ledger.
    reconfig_penalty: float = 1.0
    #: DRESS-style congestion guard: when pending min-width demand exceeds
    #: ``threshold * free_nodes``, elastic jobs are capped to a fair-share
    #: max width at admission and running gangs are denied grow options
    #: until the backlog drains.  ``1.0`` engages the guard exactly at
    #: oversubscription; larger values tolerate deeper backlogs.  The
    #: default tolerates transient spikes (plan-ahead can often absorb
    #: them without narrowing anyone) yet still trips whenever free
    #: capacity is nearly exhausted, which is when capping width — and
    #: offering shrinks — actually pays.
    elastic_congestion_threshold: float = 4.0
    #: Deadline slack granted to compensate for duration ceil-rounding, in
    #: quanta.  Quantization rounds estimated runtimes *up* by as much as one
    #: quantum; without this grace, borderline-feasible SLO jobs would be
    #: culled even though their true runtime fits ("optimistically allows
    #: scheduled jobs to complete if their deadline has not passed",
    #: Sec. 7.1).  Attainment metrics always use the true deadline.
    deadline_grace_quanta: float = 1.0
    #: Cross-cycle delta compilation (``off`` | ``on`` | ``verify``).  With
    #: ``on``, the global pipeline keeps each job's compiled STRL fragment
    #: across cycles and re-runs Algorithm 1 only for jobs whose expression
    #: changed, patching the shared sparse model instead of reconstructing
    #: it.  ``verify`` additionally runs the full recompile alongside every
    #: cycle and raises :class:`~repro.core.delta.DeltaDivergence` unless
    #: the two models are bit-identical.  Ignored by the greedy (-NG) path,
    #: whose per-job models see tentative-reservation-capped availability
    #: and are never cacheable.
    delta_mode: str = "off"
    #: Run the :mod:`repro.verify` oracles on every global cycle: replay
    #: the solve through the MILP certificate checker and the space-time
    #: schedule auditor, raising
    #: :class:`~repro.verify.audit.AuditViolation` on the first cycle
    #: whose emitted schedule breaks an invariant.  Costs one extra
    #: ``O(nonzeros)`` pass per cycle; intended for tests, benchmarks,
    #: and fig-scale regression tripwires rather than production runs.
    audit_mode: bool = False
    #: Sharded multi-domain scheduling (``off`` | ``racks`` | ``auto``).
    #: With ``racks``, the cluster is partitioned into rack-aligned
    #: scheduling domains (:mod:`repro.shard`): each cycle assigns jobs to
    #: domains (affinity-aware, load-balanced, seeded tie-break), compiles
    #: and solves one MILP per domain concurrently on the worker pool, and
    #: reconciles cross-domain gangs through a small coupling model over
    #: the boundary jobs.  ``auto`` enables sharding once the cluster is
    #: large enough for one monolithic model to stop scaling (>= 64
    #: nodes).  Requires ``global_scheduling`` and (for now) no
    #: preemption — ``validate()`` rejects the incoherent combinations.
    shard_mode: str = "off"
    #: Number of scheduling domains (``shard_mode != off``).  ``0`` picks
    #: a default of about four racks per domain; ``1`` degenerates to a
    #: single whole-cluster domain whose cycle is bit-equal to the
    #: monolithic pipeline.
    shard_count: int = 0
    #: The single RNG seed for everything stochastic under this config:
    #: domain-assignment tie-breaks, the worker-pool dispatch order of the
    #: sharded solve, and the workload generators driven by the
    #: experiment runner and benches.  One seed, bit-reproducible runs.
    seed: int = 0

    @property
    def plan_ahead_quanta(self) -> int:
        return int(round(self.plan_ahead_s / self.quantum_s))

    # -- SolveOptions-style UNSET layering ---------------------------------
    @classmethod
    def partial(cls, **overrides) -> "TetriSchedConfig":
        """A layer: only the named fields are set, the rest are ``UNSET``.

        Mirrors :class:`~repro.solver.options.SolveOptions` layering — a
        partial config documents exactly what it overrides and inherits
        everything else from the layer below via :meth:`merged_into`::

            >>> patch = TetriSchedConfig.partial(shard_mode="racks")
            >>> patch.merged_into(TetriSchedConfig(quantum_s=2)).shard_mode
            'racks'
        """
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(overrides) - names
        if unknown:
            raise SchedulerError(
                f"unknown config field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(names)}")
        blank = {name: UNSET for name in names}
        blank.update(overrides)
        return cls(**blank)

    def merged_into(self, base: "TetriSchedConfig") -> "TetriSchedConfig":
        """This layer's set fields over ``base`` (UNSET fields inherit)."""
        merged = {}
        for f in dataclasses.fields(self):
            mine = getattr(self, f.name)
            merged[f.name] = mine if is_set(mine) else getattr(base, f.name)
        return TetriSchedConfig(**merged)

    def is_resolved(self) -> bool:
        """Whether every field carries a concrete value (no UNSET left)."""
        return all(is_set(getattr(self, f.name))
                   for f in dataclasses.fields(self))

    def validate(self) -> "TetriSchedConfig":
        """Reject incoherent configurations up front, not mid-cycle.

        Raises :class:`~repro.errors.SchedulerError` naming every field
        involved.  Returns ``self`` so callers can chain.  Requires a
        resolved config (merge partial layers first — see
        :func:`resolve_config`).
        """
        def fail(msg: str) -> None:
            raise SchedulerError(f"invalid TetriSchedConfig: {msg}")

        if not self.is_resolved():
            fail("unresolved (UNSET) fields remain; merge layers via "
                 "merged_into()/resolve_config() before use")
        if self.quantum_s <= 0:
            fail(f"quantum_s must be positive, got {self.quantum_s!r}")
        if self.cycle_s <= 0:
            fail(f"cycle_s must be positive, got {self.cycle_s!r}")
        if self.plan_ahead_s < 0:
            fail(f"plan_ahead_s must be >= 0, got {self.plan_ahead_s!r}")
        if self.delta_mode not in ("off", "on", "verify"):
            fail(f"delta_mode must be 'off', 'on' or 'verify', "
                 f"got {self.delta_mode!r}")
        if self.solve_mode not in SOLVE_MODES:
            fail(f"solve_mode must be one of {SOLVE_MODES}, "
                 f"got {self.solve_mode!r}")
        if self.shard_mode not in SHARD_MODES:
            fail(f"shard_mode must be one of {SHARD_MODES}, "
                 f"got {self.shard_mode!r}")
        if self.shard_count < 0:
            fail(f"shard_count must be >= 0, got {self.shard_count!r}")
        if self.shard_mode == "off" and self.shard_count > 0:
            fail("shard_count is set but shard_mode='off' — either enable "
                 "sharding (shard_mode='racks'|'auto') or drop shard_count")
        if self.shard_mode != "off" and not self.global_scheduling:
            fail("shard_mode requires global_scheduling=True: the greedy "
                 "(-NG) path schedules one job at a time and has no domain "
                 "MILPs to shard")
        if self.shard_mode != "off" and not self.heterogeneity_aware:
            fail("shard_mode requires heterogeneity_aware=True: the -NH "
                 "ablation flattens every option to one whole-cluster "
                 "equivalence set, which no single domain can host")
        if self.shard_mode != "off" and self.enable_preemption:
            fail("shard_mode with enable_preemption is not supported: "
                 "preemption candidates span domains and would break "
                 "domain independence")
        if self.elastic_mode and not self.global_scheduling:
            fail("elastic_mode requires global_scheduling=True: width "
                 "re-planning trades a running gang's nodes against the "
                 "whole batch, which the greedy (-NG) one-job-at-a-time "
                 "path cannot express")
        if self.reconfig_penalty < 0:
            fail(f"reconfig_penalty must be >= 0, "
                 f"got {self.reconfig_penalty!r}")
        if self.elastic_congestion_threshold <= 0:
            fail(f"elastic_congestion_threshold must be positive, "
                 f"got {self.elastic_congestion_threshold!r}")
        if self.rel_gap < 0:
            fail(f"rel_gap must be >= 0, got {self.rel_gap!r}")
        # repair_gap_threshold < 0 is legal: it forces auto mode to
        # escalate to exact search every cycle (the bench uses -1.0).
        if self.solver_workers < 0:
            fail(f"solver_workers must be >= 0, got {self.solver_workers!r}")
        return self


def default_config() -> TetriSchedConfig:
    """The base layer every resolved config sits on (documented defaults).

    Constructed fresh per call: the ``backend`` default reads the
    ``REPRO_BACKEND`` environment variable at construction time, so test
    matrices that re-point it between schedulers keep working.
    """
    return TetriSchedConfig()


def resolve_config(config: TetriSchedConfig | None) -> TetriSchedConfig:
    """Merge a (possibly partial) config over the defaults and validate.

    ``None`` resolves to :func:`default_config`.  A fully-concrete config
    is validated and returned unchanged (identity-preserving, so callers
    that keep a reference see the same object the scheduler uses).
    """
    if config is None:
        return default_config()
    if not config.is_resolved():
        config = config.merged_into(default_config())
    return config.validate()


@dataclass
class CycleStats:
    """Per-cycle observability record (drives Fig. 12)."""

    now: float
    pending: int
    launched: int
    culled: int
    solver_latency_s: float
    cycle_latency_s: float
    milp_variables: int = 0
    milp_constraints: int = 0
    objective: float = 0.0
    solves: int = 0
    #: Branch-and-bound nodes explored across this cycle's solves.
    solver_nodes: int = 0
    #: LP-relaxation (simplex) iterations across this cycle's solves.
    lp_iterations: int = 0
    #: Revised-simplex engine work: dual pivots spent in warm restarts,
    #: basis refactorizations, warm restarts attempted / succeeded.
    lp_dual_pivots: int = 0
    lp_refactorizations: int = 0
    lp_warm_restarts: int = 0
    lp_warm_hits: int = 0
    #: Basis-factorization work: total factorizations (cold + refactor),
    #: Forrest–Tomlin basis updates applied in place, columns examined by
    #: partial pricing, and the worst factor fill ratio
    #: (``nnz(L+U+etas) / nnz(B)``) seen across this cycle's solves.
    lp_factorizations: int = 0
    lp_ft_updates: int = 0
    lp_pricing_candidates: int = 0
    lp_fill_ratio: float = 0.0
    #: Whether a warm start was attempted / produced a feasible seed.
    warm_start_attempted: bool = False
    warm_start_hit: bool = False
    #: Independent MILP components solved this cycle (0 = no global solve).
    components: int = 0
    #: Stored nonzeros in the cycle MILP's sparse export.
    milp_nonzeros: int = 0
    #: Component-cache exact hits (result replayed without solving) and
    #: structural near-misses (cached solution donated as a warm start).
    cache_hits: int = 0
    cache_warm_hits: int = 0
    #: Repair-path telemetry: column-generation pricing rounds, columns
    #: activated by pricing, worst audited (LP-bound) gap across this
    #: cycle's repaired solves, and escalations to exact branch and bound.
    colgen_rounds: int = 0
    colgen_columns_priced: int = 0
    repair_gap: float = 0.0
    repair_escalations: int = 0
    #: Component-cache LRU evictions observed during this cycle's solves.
    cache_evictions: int = 0
    #: Jobs cancelled by :meth:`TetriSched.cancel` and drained this cycle.
    cancelled: int = 0
    #: Delta-compilation accounting (``delta_mode != off``; zero otherwise).
    #: ``jobs_dirty`` counts fragments recompiled this cycle (new arrivals
    #: plus changed expressions), ``jobs_clean`` counts cached fragments
    #: replayed verbatim; ``rows_patched`` / ``cols_patched`` are the model
    #: rows/columns actually rewritten (recompiled fragments plus the
    #: per-cycle supply rows and preemption columns).
    jobs_dirty: int = 0
    jobs_clean: int = 0
    rows_patched: int = 0
    cols_patched: int = 0
    delta_full_rebuild: bool = False
    #: Sharded-cycle accounting (``shard_mode != off``; zeros otherwise).
    #: ``shard_domains`` counts domains that compiled a MILP this cycle,
    #: ``shard_boundary_jobs`` the cross-domain gangs reconciled by the
    #: coupling model, ``shard_trimmed_jobs`` the jobs whose placement
    #: options were restricted when pinned to a domain, and
    #: ``shard_quality_bound`` the declared bound on objective loss vs the
    #: monolithic optimum (the summed best-case value of the trimmed and
    #: boundary jobs; zero when no gang crosses a domain — exact parity).
    shard_domains: int = 0
    shard_boundary_jobs: int = 0
    shard_trimmed_jobs: int = 0
    shard_quality_bound: float = 0.0
    #: Domains whose MILP timed out and fell back to greedy this cycle.
    shard_greedy_fallbacks: int = 0
    #: Elastic re-planning accounting (``elastic_mode``; zeros otherwise).
    #: ``elastic_offered`` counts running elastic jobs that re-entered the
    #: batch with resize options this cycle; ``elastic_resized`` those the
    #: solver actually re-sized (``grown``/``shrunk`` split it); the
    #: congestion fields record whether the DRESS-style guard engaged and
    #: the fair-share width cap it imposed (0 = uncapped).
    elastic_offered: int = 0
    elastic_resized: int = 0
    elastic_grown: int = 0
    elastic_shrunk: int = 0
    elastic_congested: bool = False
    elastic_width_cap: int = 0
    #: Per-domain records (``{"domain", "jobs", "objective", "solve_s"}``),
    #: JSON-serializable for the service's cycle-stats API.
    domain_stats: list = field(default_factory=list)
    #: Wall-clock seconds per pipeline stage.  Keys are the
    #: :class:`repro.pipeline.stages.StageName` values (plain strings after
    #: JSON round-trips; the str-mixin enum indexes both).
    stage_timings: dict[str, float] = field(default_factory=dict)


@dataclass
class SolveTelemetry:
    """Solver-side numbers one cycle accumulates (shared by both modes)."""

    solver_latency_s: float = 0.0
    solves: int = 0
    milp_variables: int = 0
    milp_constraints: int = 0
    objective: float = 0.0
    solver_nodes: int = 0
    lp_iterations: int = 0
    lp_dual_pivots: int = 0
    lp_refactorizations: int = 0
    lp_warm_restarts: int = 0
    lp_warm_hits: int = 0
    lp_factorizations: int = 0
    lp_ft_updates: int = 0
    lp_pricing_candidates: int = 0
    lp_fill_ratio: float = 0.0
    warm_start_attempted: bool = False
    warm_start_hit: bool = False
    cache_hits: int = 0
    cache_warm_hits: int = 0
    colgen_rounds: int = 0
    colgen_columns_priced: int = 0
    repair_gap: float = 0.0
    repair_escalations: int = 0
    cache_evictions: int = 0

    def absorb(self, res) -> None:
        """Fold one :class:`~repro.solver.result.MILPResult` in."""
        self.solves += 1
        self.solver_nodes += res.nodes
        self.lp_iterations += int(res.stats.get("lp_iterations", 0))
        self.lp_dual_pivots += int(res.stats.get("lp_dual_pivots", 0))
        self.lp_refactorizations += int(res.stats.get("lp_refactorizations", 0))
        self.lp_warm_restarts += int(res.stats.get("lp_warm_restarts", 0))
        self.lp_warm_hits += int(res.stats.get("lp_warm_hits", 0))
        self.lp_factorizations += int(res.stats.get("lp_factorizations", 0))
        self.lp_ft_updates += int(res.stats.get("lp_ft_updates", 0))
        self.lp_pricing_candidates += int(
            res.stats.get("lp_pricing_candidates", 0))
        # Worst factor fill across this cycle's solves (a max, not a sum).
        self.lp_fill_ratio = max(self.lp_fill_ratio,
                                 float(res.stats.get("lp_fill_ratio", 0.0)))
        self.cache_hits += int(res.stats.get("cache_hits", 0))
        self.cache_warm_hits += int(res.stats.get("cache_warm_hits", 0))
        self.cache_evictions += int(res.stats.get("cache_evictions", 0))
        self.colgen_rounds += int(res.stats.get("colgen_rounds", 0))
        self.colgen_columns_priced += int(
            res.stats.get("colgen_columns_priced", 0))
        # Worst audited gap across this cycle's repaired solves.
        self.repair_gap = max(self.repair_gap,
                              float(res.stats.get("repair_gap", 0.0)))
        self.repair_escalations += int(res.stats.get("repair_escalations", 0))


@dataclass
class CycleResult:
    """What a scheduling cycle decided."""

    allocations: list[Allocation] = field(default_factory=list)
    culled: list[str] = field(default_factory=list)
    #: Running jobs killed by the preemption extension this cycle.
    preempted: list[str] = field(default_factory=list)
    #: Jobs whose :meth:`TetriSched.cancel` request was honored this cycle.
    cancelled: list[str] = field(default_factory=list)
    #: Running elastic jobs whose gang width changed this cycle
    #: (``elastic_mode``).  Each resized job also appears in
    #: ``allocations`` with its *new* node set — callers must treat that
    #: allocation as a reconfiguration of the running job, not a fresh
    #: launch.  Jobs that kept their width are listed nowhere (no-op).
    resized: list[str] = field(default_factory=list)
    stats: CycleStats | None = None


class TetriSched:
    """The scheduler: queue management + per-cycle global rescheduling.

    Construct through the :mod:`repro.api` facade — direct construction
    still works for one release but warns:

    >>> from repro.api import Scheduler
    >>> from repro.cluster import Cluster
    >>> cluster = Cluster.build(racks=1, nodes_per_rack=4)
    >>> api = Scheduler.open(cluster, TetriSchedConfig(quantum_s=10,
    ...                                                plan_ahead_s=30))
    >>> sched = api.core   # the underlying TetriSched
    """

    def __init__(self, cluster: Cluster,
                 config: TetriSchedConfig | None = None) -> None:
        warnings.warn(
            "direct TetriSched(...) construction is deprecated; build "
            "schedulers through repro.api.Scheduler.open(cluster, config) "
            "(this shim is kept for one release)",
            DeprecationWarning, stacklevel=2)
        self._init(cluster, config)

    @classmethod
    def _from_api(cls, cluster: Cluster,
                  config: TetriSchedConfig | None = None) -> "TetriSched":
        """The facade's constructor (no deprecation shim)."""
        self = cls.__new__(cls)
        self._init(cluster, config)
        return self

    def _init(self, cluster: Cluster,
              config: TetriSchedConfig | None) -> None:
        self.cluster = cluster
        self.config = resolve_config(config)
        self.state = ClusterState(cluster.node_names)
        self.queues: PriorityQueues = PriorityQueues()
        self.cycle_history: list[CycleStats] = []
        self._backend = make_backend(
            self.config.backend,
            SolveOptions(rel_gap=self.config.rel_gap,
                         time_limit=self.config.solver_time_limit,
                         solve_mode=self.config.solve_mode,
                         repair_gap_threshold=self.config.repair_gap_threshold))
        self._component_cache = (ComponentCache()
                                 if self.config.component_cache else None)
        self._global_pipeline = global_pipeline(audit=self.config.audit_mode)
        self._greedy_pipeline = greedy_pipeline()
        # Previous cycle's accepted plan: (job_id, leaf) pairs, and its time.
        self._prev_plan: list[tuple[str, NCk]] = []
        self._prev_now: float = 0.0
        # Requests of currently running jobs (for preemption re-queuing).
        self._launched: dict[str, JobRequest] = {}
        # Elastic re-planning: this cycle's congestion verdict
        # (congested?, fair-share width cap) — recomputed by run_cycle so
        # every _generate/_resize call in one cycle sees the same view.
        self._congestion: tuple[bool, int | None] = (False, None)
        # Cross-cycle fragment cache (delta_mode on/verify, global only).
        self._delta = None
        if (self.config.delta_mode != "off"
                and self.config.global_scheduling):
            from repro.core.delta import DeltaCompiler
            self._delta = DeltaCompiler(self.state, self.config.quantum_s)
        # Cancellation requests not yet drained.  ``cancel`` may be called
        # from another thread mid-cycle (the async service does); requests
        # are honored only at safe points — cycle start, the launch loop
        # (a cancelled job is never ``state.start``-ed), and cycle end — so
        # a cancel can never strand an allocation-ledger entry.
        self._cancelled: set[str] = set()
        # Sharded multi-domain scheduling (shard_mode racks/auto).  The
        # coordinator persists across cycles: sticky job->domain
        # assignments and per-domain delta fragment stores live on it.
        self._coordinator = None
        self._sharded_pipeline = None
        if self.config.shard_mode != "off":
            from repro.shard import (DomainCoordinator, sharded_pipeline,
                                     sharding_active)
            if sharding_active(self.config, cluster):
                self._coordinator = DomainCoordinator(
                    cluster, self.state, self.config)
                self._sharded_pipeline = sharded_pipeline(
                    audit=self.config.audit_mode)
                # Delta compilation composes with sharding through the
                # coordinator's per-domain fragment stores; the monolithic
                # store would full-rebuild on every interleaved signature.
                self._delta = None

    # -- queue management ----------------------------------------------------
    def submit(self, request: JobRequest) -> None:
        """Add a job to the pending queue (from YARN proxy / reservation)."""
        self.queues.push(request.job_id, request.priority, request)

    def on_job_finished(self, job_id: str, now: float) -> frozenset[str]:
        """Signal job completion; frees its nodes (Sec. 3.3 interface (c))."""
        self._launched.pop(job_id, None)
        return self.state.finish(job_id)

    def cancel(self, job_id: str) -> None:
        """Request cancellation of a queued or running job.

        Safe to call from another thread while a cycle is in flight (set
        addition is atomic under the GIL); the request is honored at the
        next safe point.  Unknown ids are silently discarded at drain time
        (the job may have finished in the meantime).
        """
        self._cancelled.add(job_id)

    def _drain_cancellations(self) -> list[str]:
        """Apply pending cancellations; returns the job ids drained.

        Queued jobs leave the queue; running jobs are finished on the
        cluster ledger and dropped from the launch registry — the paired
        removal is what keeps the allocation ledger orphan-free (the audit
        oracle checks the invariant every audited cycle).
        """
        if not self._cancelled:
            return []
        drained: list[str] = []
        for job_id in sorted(self._cancelled):
            if job_id in self.queues:
                self.queues.remove(job_id)
                drained.append(job_id)
            elif self.state.is_running(job_id):
                self.state.finish(job_id)
                self._launched.pop(job_id, None)
                drained.append(job_id)
            elif job_id in self._launched:
                # Cancel landed mid-resize: Extract finished the old
                # allocation and the launch loop skipped the re-entry, so
                # only the registry half remains.  Drop it to keep the
                # ledger-registry pairing orphan-free.
                self._launched.pop(job_id)
                drained.append(job_id)
            # else: already finished/culled — nothing to undo.
        self._cancelled.clear()
        return drained

    @property
    def pending_count(self) -> int:
        return len(self.queues)

    # -- per-cycle scheduling --------------------------------------------------
    def run_cycle(self, now: float) -> CycleResult:
        """Run one scheduling cycle at absolute time ``now``.

        Returns the launch decisions; callers (the simulator / YARN proxy)
        are responsible for actually starting the jobs and reporting
        completion via :meth:`on_job_finished`.
        """
        t_cycle = time.monotonic()
        result = CycleResult()
        result.cancelled.extend(self._drain_cancellations())
        self._congestion = self._elastic_congestion()
        tel = SolveTelemetry()
        ctx = CycleContext(scheduler=self, now=now, result=result,
                           telemetry=tel)
        if self._sharded_pipeline is not None:
            pipeline = self._sharded_pipeline
        elif self.config.global_scheduling:
            pipeline = self._global_pipeline
        else:
            pipeline = self._greedy_pipeline

        with obs.span("cycle"):
            pipeline.run(ctx)
            kept: list[Allocation] = []
            resized = set(result.resized)
            for alloc in result.allocations:
                if alloc.job_id in self._cancelled:
                    # Cancelled while the solver ran: never start it, never
                    # touch the ledger.  A queued job stays queued and the
                    # drain below removes it; a resized job's old allocation
                    # was already finished by Extract, so the drain drops
                    # its launch-registry half instead of re-entering it.
                    continue
                if alloc.job_id in resized:
                    # Width re-plan: the old allocation was finished in
                    # Extract; re-enter the running job at its new width.
                    # The request stays in the launch registry untouched.
                    self.state.start(alloc.job_id, alloc.nodes,
                                     alloc.start_time, alloc.expected_end)
                    kept.append(alloc)
                    continue
                req = self.queues.remove(alloc.job_id)
                self._launched[alloc.job_id] = req
                self.state.start(alloc.job_id, alloc.nodes,
                                 alloc.start_time, alloc.expected_end)
                kept.append(alloc)
            result.allocations = kept
            result.resized = [job_id for job_id in result.resized
                              if self.state.is_running(job_id)]
        result.cancelled.extend(self._drain_cancellations())

        delta = ctx.delta
        stats = CycleStats(
            now=now, pending=self.pending_count,
            launched=len(result.allocations), culled=len(result.culled),
            solver_latency_s=tel.solver_latency_s,
            cycle_latency_s=time.monotonic() - t_cycle,
            milp_variables=tel.milp_variables,
            milp_constraints=tel.milp_constraints,
            objective=tel.objective, solves=tel.solves,
            solver_nodes=tel.solver_nodes, lp_iterations=tel.lp_iterations,
            lp_dual_pivots=tel.lp_dual_pivots,
            lp_refactorizations=tel.lp_refactorizations,
            lp_warm_restarts=tel.lp_warm_restarts,
            lp_warm_hits=tel.lp_warm_hits,
            lp_factorizations=tel.lp_factorizations,
            lp_ft_updates=tel.lp_ft_updates,
            lp_pricing_candidates=tel.lp_pricing_candidates,
            lp_fill_ratio=tel.lp_fill_ratio,
            warm_start_attempted=tel.warm_start_attempted,
            warm_start_hit=tel.warm_start_hit,
            components=ctx.components, milp_nonzeros=ctx.nnz,
            cache_hits=tel.cache_hits, cache_warm_hits=tel.cache_warm_hits,
            colgen_rounds=tel.colgen_rounds,
            colgen_columns_priced=tel.colgen_columns_priced,
            repair_gap=tel.repair_gap,
            repair_escalations=tel.repair_escalations,
            cache_evictions=tel.cache_evictions,
            cancelled=len(result.cancelled),
            elastic_offered=len(ctx.resizable),
            elastic_resized=len(result.resized),
            elastic_grown=ctx.resize_grown,
            elastic_shrunk=ctx.resize_shrunk,
            elastic_congested=self._congestion[0],
            elastic_width_cap=self._congestion[1] or 0,
            jobs_dirty=delta.jobs_dirty if delta else 0,
            jobs_clean=delta.jobs_clean if delta else 0,
            rows_patched=delta.rows_patched if delta else 0,
            cols_patched=delta.cols_patched if delta else 0,
            delta_full_rebuild=bool(delta and delta.full_rebuild),
            stage_timings=dict(ctx.stage_timings))
        if ctx.shard is not None:
            sh = ctx.shard
            stats.shard_domains = len(sh.active_domains())
            stats.shard_boundary_jobs = len(sh.boundary)
            stats.shard_trimmed_jobs = len(sh.trimmed)
            stats.shard_quality_bound = sh.quality_bound
            stats.shard_greedy_fallbacks = len(sh.fallback_domains)
            stats.domain_stats = sh.domain_records()
        self.cycle_history.append(stats)
        result.stats = stats
        return result

    # -- STRL generation --------------------------------------------------------
    def _generate(self, req: JobRequest, now: float) -> StrlNode | None:
        options = req.options
        if not self.config.heterogeneity_aware:
            options = self._flatten_options(options)
        if req.elastic and self.config.elastic_mode:
            return generate_elastic_strl(
                list(options), req.value_fn, now=now,
                quantum_s=self.config.quantum_s,
                plan_ahead_quanta=self.config.plan_ahead_quanta,
                deadline=req.deadline, cull=self.config.cull,
                width_cap=self._congestion[1])
        return generate_job_strl(
            list(options), req.value_fn, now=now,
            quantum_s=self.config.quantum_s,
            plan_ahead_quanta=self.config.plan_ahead_quanta,
            deadline=req.deadline, cull=self.config.cull)

    def _flatten_options(self, options: tuple[SpaceOption, ...]) -> tuple[SpaceOption, ...]:
        """-NH: one whole-cluster option with the conservative runtime.

        The paper's TetriSched-NH "creates STRL expressions that draw k
        containers from only one possible equivalence set: the whole
        cluster" and "uses the specified slowdown to conservatively estimate
        job's runtime on a (likely) sub-optimal allocation" (Sec. 6.3).
        """
        k = options[0].k
        worst = max(opt.duration_s for opt in options)
        return (SpaceOption(self.cluster.node_names, k=k, duration_s=worst,
                            label="nh-flattened"),)

    # -- global scheduling ---------------------------------------------------------
    def _preemption_candidates(self):
        """Running best-effort jobs the preemption extension may kill."""
        from repro.core.compiler import PreemptionCandidate
        candidates = []
        for job_id, req in self._launched.items():
            if req.priority != PriorityClass.BEST_EFFORT:
                continue
            if req.elastic and self.config.elastic_mode:
                # A running elastic job re-enters the batch as a resize
                # candidate; offering it as a preemption victim too would
                # let one solution free its nodes twice.
                continue
            if not self.state.is_running(job_id):
                continue
            alloc = self.state.allocation_of(job_id)
            candidates.append(PreemptionCandidate(
                job_id=job_id, nodes=alloc.nodes,
                penalty=self.config.preemption_penalty))
        return candidates

    # -- elastic width re-planning ---------------------------------------------------
    @property
    def _resize_enabled(self) -> bool:
        """Whether running elastic jobs re-enter this scheduler's cycles.

        Resizes need the monolithic global batch: the greedy path is
        rejected by ``validate()`` and sharded cycles solve per-domain
        MILPs that cannot see a cross-domain gang's full width ladder —
        there only the pending-side :class:`~repro.strl.ast.ElasticNCk`
        shapes apply (trimmed per domain like any other option).
        """
        return (self.config.elastic_mode
                and self.config.global_scheduling
                and self._coordinator is None)

    def _elastic_congestion(self) -> tuple[bool, int | None]:
        """DRESS-style congestion verdict for this cycle.

        The ledger is congested when the pending jobs' *minimum* node
        demand (each elastic job counted at its narrowest width) exceeds
        ``elastic_congestion_threshold`` times the currently free supply.
        Under congestion every pending elastic job is capped to a
        fair-share max width and running gangs are denied grow options,
        so malleable jobs shrink toward their minimum footprint instead
        of racing the backlog for nodes.
        """
        if not self.config.elastic_mode:
            return (False, None)
        free = len(self.state.free_nodes())
        elastic_pending = 0
        demand = 0
        for _job_id, req in self.queues.items():
            widths = [opt.k for opt in req.options if opt.feasible]
            if not widths:
                continue
            demand += min(widths)
            if req.elastic:
                elastic_pending += 1
        if demand <= self.config.elastic_congestion_threshold * free:
            return (False, None)
        cap = max(1, free // max(1, elastic_pending))
        return (True, cap)

    def _resize_fragments(self, now: float):
        """(job_id, expr, candidate) per running elastic job, for re-entry.

        Each running elastic job contributes one STRL fragment whose root
        indicator doubles as the release decision: activating it frees
        the job's current quanta on the supply rows
        (:func:`~repro.core.compiler.assemble_batch`) and the chosen leaf
        re-consumes the new width.  A supply-neutral *keep* option at the
        current width makes staying put weakly dominate inaction, so the
        fragment competes fairly without ever forcing a resize.
        """
        from repro.core.compiler import ResizeCandidate
        if not self._resize_enabled:
            return []
        congested = self._congestion[0]
        fragments = []
        for job_id in sorted(self._launched):
            req = self._launched[job_id]
            if not req.elastic or not self.state.is_running(job_id):
                continue
            alloc = self.state.allocation_of(job_id)
            expr = self._resize_expr(req, alloc, now, congested)
            if expr is None:
                continue
            fragments.append((job_id, expr,
                              ResizeCandidate(job_id=job_id,
                                              nodes=alloc.nodes)))
        return fragments

    def _resize_expr(self, req: JobRequest, alloc, now: float,
                     congested: bool) -> StrlNode | None:
        """Grow/shrink/keep options for one running elastic job.

        Remaining work rescales with width: if the job would need
        ``full(w)`` seconds at width ``w`` from scratch and has a fraction
        ``frac`` of its work left, width ``w`` finishes it in
        ``frac * full(w)`` seconds.  Shrink options draw from the job's
        *current* nodes (no migration, duration grows); grow options draw
        from the full equivalence set and pay ``reconfig_penalty``; the
        keep option re-books exactly the current footprint (supply-neutral
        by construction).  All options start now — a deferred resize is
        just next cycle's re-plan.
        """
        q = self.config.quantum_s
        family = sorted((opt for opt in req.options if opt.feasible),
                        key=lambda o: o.k)
        full = {opt.k: opt.duration_s for opt in family}
        nodes_by_width = {opt.k: opt.nodes for opt in family}
        cur = len(alloc.nodes)
        if cur not in full:
            return None  # footprint no longer matches the ladder
        remaining_s = alloc.expected_end - now
        if remaining_s <= q * 1e-6:
            return None  # completing this quantum; let it finish
        frac = min(1.0, remaining_s / full[cur])
        leaves: list[NCk] = []
        for width in sorted(full):
            if congested and width > cur:
                continue  # grow denied while the backlog outstrips supply
            if not congested and width < cur:
                # Squeezing a gang costs real work (narrow widths run at
                # reduced efficiency), so shrink options exist only while
                # pending demand outstrips free supply.  Otherwise the
                # solver would trade true gang slowdown for the cosmetic
                # earliness of jobs that fit in free capacity anyway.
                continue
            dur_q = quantize_duration(frac * full[width], q)
            completion = now + dur_q * q
            value = req.value_fn(completion)
            if width > cur:
                value -= self.config.reconfig_penalty
            if value > 0.0:
                value *= max(0.1, 1.0 - DEFAULT_EARLINESS_BIAS * dur_q)
            if value <= 0.0:
                if width > cur:
                    continue  # growth must pay for itself
                # Keep/shrink stay offered even when the job's own value
                # has decayed to nothing: a running gang must always be
                # squeezable, or a zero-value wide gang (excluded from
                # preemption candidates) would block SLO bursts forever.
                value = 1e-6 * (1 + width)
            eq_set = alloc.nodes if width <= cur else nodes_by_width[width]
            if width > len(eq_set):
                continue
            leaves.append(NCk(nodes=eq_set, k=width, start=0,
                              duration=dur_q, value=value))
        if not leaves:
            return None
        if len(leaves) == 1:
            return leaves[0]
        return Max(*leaves)

    # -- greedy (-NG) scheduling -------------------------------------------------------
    def _cycle_greedy(self, exprs, requests, now,
                      tel: SolveTelemetry) -> list[Allocation]:
        """One-at-a-time scheduling in priority order (TetriSched-NG).

        Uses the full MILP formulation per job; each job's supply reflects
        the tentative (possibly deferred) placements of jobs decided earlier
        in this cycle.
        """
        acc = PlanAccumulator(self.state, now, self.config.quantum_s)
        order = {job_id: i for i, job_id in enumerate(self.queues.job_ids())}
        exprs_sorted = sorted(exprs, key=lambda kv: order[kv[0]])
        allocs: list[Allocation] = []
        for job_id, expr in exprs_sorted:
            with obs.span("compile"):
                compiler = StrlCompiler(acc, self.config.quantum_s, now)
                compiled = compiler.compile([(job_id, expr)])
            tel.milp_variables += compiled.stats["variables"]
            tel.milp_constraints += compiled.stats["constraints"]
            t0 = time.monotonic()
            with obs.span("solve"):
                res = self._backend.solve(compiled.model)
            tel.solver_latency_s += time.monotonic() - t0
            tel.absorb(res)
            if not res.status.has_solution or res.x is None:
                continue
            tel.objective += res.objective
            with obs.span("decode"):
                placements = compiled.decode(res.x)
            # Reserve *all* chosen placements (incl. deferred) in the
            # accumulator so later jobs see them; launch only start == 0.
            # Picks are transactional per job: if any placement turns out
            # unassignable, every reservation already made for this job is
            # rolled back so later jobs don't see phantom-occupied capacity.
            job_allocs: list[tuple[frozenset[str], int]] = []
            picked: list[tuple[frozenset[str], int, int]] = []
            pick_failed = False
            with obs.span("materialize"):
                for pl in placements:
                    try:
                        nodes = acc.pick(compiled.partitioning,
                                         pl.node_counts, pl.start,
                                         pl.duration)
                    except SchedulerError:
                        # Fragmentation made this tentative placement
                        # unassignable (possible for multi-leaf Min gangs
                        # that the per-leaf interval caps cannot fully
                        # protect).  Skip; the job is re-planned next cycle.
                        pick_failed = True
                        break
                    picked.append((nodes, pl.start, pl.duration))
                    if pl.start == 0:
                        job_allocs.append((nodes, pl.duration))
                if pick_failed:
                    for nodes, start, duration in picked:
                        acc.unreserve(nodes, start, duration)
                    obs.count("scheduler.greedy.pick_rollbacks")
                    continue  # never launch a partial gang
                for nodes, dur in job_allocs:
                    allocs = self._merge_launch(
                        allocs, job_id, nodes,
                        now, now + dur * self.config.quantum_s)
        self._prev_plan = []
        return allocs

    # -- shared helpers -----------------------------------------------------------------
    def _materialize(self, placements, compiled: CompiledBatch,
                     acc: PlanAccumulator, requests, now) -> list[Allocation]:
        """Turn decoded placements into launch decisions for start == 0."""
        allocs: list[Allocation] = []
        # Reserve deferred placements first so they are never cannibalized
        # by now-starting picks of overlapping partitions? No: reservation
        # order does not matter for feasibility (supply constraints hold for
        # every quantum), but deterministic order aids reproducibility.
        for pl in sorted(placements, key=lambda p: (p.start, p.job_id)):
            nodes = acc.pick(compiled.partitioning, pl.node_counts,
                             pl.start, pl.duration)
            if pl.start == 0:
                allocs = self._merge_launch(
                    allocs, pl.job_id, nodes, now,
                    now + pl.duration * self.config.quantum_s)
        return allocs

    @staticmethod
    def _merge_launch(allocs: list[Allocation], job_id: str,
                      nodes: frozenset[str], start: float,
                      expected_end: float) -> list[Allocation]:
        """Merge multi-leaf (e.g. Min gang) placements of one job."""
        for i, a in enumerate(allocs):
            if a.job_id == job_id:
                allocs[i] = Allocation(job_id, a.nodes | nodes, a.start_time,
                                       max(a.expected_end, expected_end))
                return allocs
        allocs.append(Allocation(job_id, nodes, start, expected_end))
        return allocs

    # -- warm start --------------------------------------------------------------------------
    def _build_warm_start(self, compiled: CompiledBatch,
                          now: float) -> np.ndarray | None:
        """Previous cycle's plan, shifted forward, as a feasible MILP point.

        Implements the paper's "we cache solver results to serve as a
        feasible initial solution for the next cycle's solver invocation"
        (Sec. 3.2.2).  Jobs that launched, finished, or no longer fit are
        dropped; if nothing survives, returns ``None``.
        """
        if not self._prev_plan:
            return None
        elapsed_q = int(round((now - self._prev_now) / self.config.quantum_s))
        if elapsed_q < 0:
            return None

        # Remaining capacity ledger per (partition, quantum).
        remaining: dict[tuple[int, int], int] = {}
        for part in compiled.partitioning.partitions:
            profile = self.state.availability_profile(
                part.nodes, compiled.horizon, now, self.config.quantum_s)
            for t in range(compiled.horizon):
                remaining[(part.pid, t)] = profile[t]

        # Index compiled leaves by (job, eq-set, start, duration).
        by_key = {}
        for rec in compiled.leaf_records:
            key = (rec.job_id, rec.leaf.nodes, rec.leaf.start,
                   rec.leaf.duration)
            by_key.setdefault(key, rec)

        x = np.zeros(compiled.model.num_variables)
        used_any = False
        for job_id, leaf in self._prev_plan:
            new_start = leaf.start - elapsed_q
            if new_start < 0 or job_id not in compiled.job_indicators:
                continue
            rec = by_key.get((job_id, leaf.nodes, new_start, leaf.duration))
            if rec is None:
                continue
            # Greedily refill the leaf's demand from its partitions.
            plan: list[tuple[int, int]] = []
            needed = leaf.k
            span = range(new_start, new_start + leaf.duration)
            for pid, pvar in sorted(rec.partition_vars.items()):
                if needed == 0:
                    break
                avail = min(remaining[(pid, t)] for t in span)
                take = min(needed, avail, int(pvar.ub or 0))
                if take > 0:
                    plan.append((pid, take))
                    needed -= take
            if needed > 0:
                continue  # no longer fits; drop from warm start
            for pid, take in plan:
                x[rec.partition_vars[pid].index] = take
                for t in span:
                    remaining[(pid, t)] -= take
            x[rec.indicator.index] = 1.0
            x[compiled.job_indicators[job_id].index] = 1.0
            used_any = True
        if not used_any:
            return None
        if not compiled.model.check_feasible(x):
            return None
        return x
