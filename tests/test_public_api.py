"""Public-API and documentation tests.

* every name in ``repro.__all__`` (and each subpackage's) actually resolves;
* the top-level ``__all__`` is the locked API contract — additions and
  removals must be deliberate (update ``TOP_LEVEL_API`` here in the same
  change);
* no private (underscore) names or raw submodule objects leak through any
  ``__all__``;
* module doctests run (the examples in docstrings must stay correct).
"""

import doctest
import importlib
import inspect

import pytest

DOCTEST_MODULES = [
    "repro",
    "repro.solver.expr",
    "repro.solver.model",
    "repro.solver.branch_bound",
    "repro.solver.options",
    "repro.cluster.cluster",
    "repro.cluster.state",
    "repro.reservation.rayon",
    "repro.core.scheduler",
    "repro.shard.domains",
    "repro.verify.certificate",
]

PACKAGES = [
    "repro", "repro.solver", "repro.strl", "repro.cluster", "repro.core",
    "repro.pipeline", "repro.reservation", "repro.baselines", "repro.sim",
    "repro.workloads", "repro.experiments", "repro.verify", "repro.service",
    "repro.shard",
]

#: The locked top-level contract: exactly what ``from repro import *``
#: gives you.  A failing diff here means the public API changed — that
#: must be an intentional, reviewed decision.
TOP_LEVEL_API = {
    # the scheduler facade (the supported construction path)
    "Scheduler",
    # cluster substrate
    "Cluster", "ClusterState", "Node",
    # scheduler core
    "Allocation", "JobRequest", "PriorityClass", "StrlCompiler",
    "TetriSched", "TetriSchedConfig",
    # sharded multi-domain scheduling
    "DomainCoordinator", "DomainPartitioner", "SchedulingDomain",
    # cross-cycle delta compilation
    "CycleDelta", "DeltaDivergence",
    # long-lived scheduler service
    "SchedulerService", "ServiceAdapter", "ServiceServer",
    # cycle pipeline
    "CyclePipeline", "StageName", "global_pipeline", "greedy_pipeline",
    # solver surface
    "ComponentCache", "Model", "SolveOptions", "SolveStatus", "make_backend",
    # STRL
    "Barrier", "LnCk", "Max", "Min", "NCk", "Scale", "SpaceOption", "Sum",
    "parse", "to_text",
    # reservation + simulation
    "RayonReservationSystem", "GpuType", "Job", "MpiType", "Simulation",
    "SimulationResult", "TetriSchedAdapter", "UnconstrainedType",
    # value functions
    "best_effort_value", "slo_value",
    # verification oracles
    "AuditReport", "AuditViolation", "CertificateReport", "audit_cycle",
    "audit_sharded", "check_certificate",
}


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__") or package == "repro.experiments"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_top_level_all_is_the_locked_contract(self):
        import repro
        assert set(repro.__all__) == TOP_LEVEL_API
        assert len(repro.__all__) == len(set(repro.__all__)), \
            "__all__ contains duplicates"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_private_names_in_all(self, package):
        mod = importlib.import_module(package)
        leaked = [n for n in getattr(mod, "__all__", [])
                  if n.startswith("_")]
        assert not leaked, f"{package}.__all__ leaks private names: {leaked}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_modules_exported_through_all(self, package):
        """``__all__`` re-exports objects, never raw module handles."""
        mod = importlib.import_module(package)
        leaked = [n for n in getattr(mod, "__all__", [])
                  if inspect.ismodule(getattr(mod, n))]
        assert not leaked, f"{package}.__all__ exports modules: {leaked}"

    def test_solver_surface_includes_parallel_api(self):
        from repro import solver
        for name in ("SolveOptions", "ComponentCache", "WorkerPool",
                     "component_fingerprint", "solve_decomposed",
                     "shutdown_pools"):
            assert name in solver.__all__

    def test_version(self):
        import repro
        assert repro.__version__


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests(self, module_name):
        mod = importlib.import_module(module_name)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures"


class TestPublicSurface:
    def test_quickstart_flow(self):
        """The README quickstart, executed."""
        from repro import (Cluster, JobRequest, PriorityClass, SpaceOption,
                           TetriSched, TetriSchedConfig)
        from repro.valuefn import StepValue

        cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
        sched = TetriSched(cluster, TetriSchedConfig(
            quantum_s=10, cycle_s=10, plan_ahead_s=96))
        sched.submit(JobRequest(
            job_id="gpu-job",
            options=(SpaceOption(cluster.nodes_with_attr("gpu"), k=2,
                                 duration_s=20, label="gpu"),
                     SpaceOption(cluster.node_names, k=2, duration_s=30,
                                 label="anywhere")),
            value_fn=StepValue(1000.0, deadline=100.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=100.0))
        result = sched.run_cycle(now=0.0)
        assert len(result.allocations) == 1
        assert result.allocations[0].nodes <= cluster.nodes_with_attr("gpu")
