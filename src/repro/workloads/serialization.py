"""Workload (de)serialization: archive generated workloads as JSON.

Generated workloads are deterministic given a seed, but archiving the exact
job list makes runs auditable and lets external traces be imported into the
simulator without writing a generator.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import WorkloadError
from repro.sim.jobs import (ElasticType, GpuType, Job, JobType, MpiType,
                            UnconstrainedType)

_FORMAT_VERSION = 1


def _type_to_dict(job_type: JobType) -> dict:
    if isinstance(job_type, UnconstrainedType):
        return {"name": "unconstrained"}
    if isinstance(job_type, GpuType):
        return {"name": "gpu", "slowdown": job_type.slowdown}
    if isinstance(job_type, MpiType):
        return {"name": "mpi", "slowdown": job_type.slowdown}
    if isinstance(job_type, ElasticType):
        return {"name": "elastic", "min_k": job_type.min_k,
                "efficiency": job_type.efficiency}
    raise WorkloadError(f"cannot serialize job type {job_type!r}")


def _type_from_dict(raw: dict) -> JobType:
    name = raw.get("name")
    if name == "unconstrained":
        return UnconstrainedType()
    if name == "gpu":
        return GpuType(slowdown=raw.get("slowdown", 1.5))
    if name == "mpi":
        return MpiType(slowdown=raw.get("slowdown", 1.5))
    if name == "elastic":
        return ElasticType(min_k=raw.get("min_k", 1),
                           efficiency=raw.get("efficiency", 1.0))
    raise WorkloadError(f"unknown job type {name!r}")


def job_to_dict(job: Job) -> dict:
    """One job as a plain JSON-safe dict."""
    return {
        "job_id": job.job_id,
        "type": _type_to_dict(job.job_type),
        "k": job.k,
        "base_runtime_s": job.base_runtime_s,
        "submit_time": job.submit_time,
        "deadline": job.deadline,
        "estimate_error": job.estimate_error,
    }


def job_from_dict(raw: dict) -> Job:
    try:
        return Job(
            job_id=raw["job_id"],
            job_type=_type_from_dict(raw["type"]),
            k=int(raw["k"]),
            base_runtime_s=float(raw["base_runtime_s"]),
            submit_time=float(raw["submit_time"]),
            deadline=(float(raw["deadline"])
                      if raw.get("deadline") is not None else None),
            estimate_error=float(raw.get("estimate_error", 0.0)))
    except KeyError as exc:
        raise WorkloadError(f"job record missing field {exc}") from None


def dump_workload(jobs: list[Job]) -> str:
    """Serialize a workload to a JSON document."""
    return json.dumps({
        "version": _FORMAT_VERSION,
        "jobs": [job_to_dict(j) for j in jobs],
    }, indent=2)


def load_workload(text: str) -> list[Job]:
    """Parse a workload JSON document back into jobs."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"invalid workload JSON: {exc}") from None
    if doc.get("version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format version {doc.get('version')!r}")
    return [job_from_dict(raw) for raw in doc.get("jobs", [])]


def save_workload_file(jobs: list[Job], path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(dump_workload(jobs))


def load_workload_file(path: str | pathlib.Path) -> list[Job]:
    return load_workload(pathlib.Path(path).read_text())
