"""Ablation: dynamic minimal partitioning (TR Appendix A, Sec. 7.3).

The paper's most important MILP-size optimization replaces per-node
variables with per-partition integer variables.  This bench compiles the
same heterogeneous batch both ways and compares MILP sizes and solve times;
schedules (objective values) must be identical.
"""

import pytest
from conftest import save_and_print

from repro.cluster import Cluster, ClusterState
from repro.core import StrlCompiler
from repro.experiments import format_table
from repro.solver import make_backend
from repro.strl import Max, NCk


def make_batch(cluster, jobs=8, starts=6):
    gpu = cluster.nodes_with_attr("gpu")
    everything = cluster.node_names
    batch = []
    for j in range(jobs):
        leaves = []
        for s in range(starts):
            leaves.append(NCk(gpu, 2, s, 2, 4.0))
            leaves.append(NCk(everything, 2, s, 3, 3.0))
        batch.append((f"job{j}", Max(*leaves)))
    return batch


@pytest.fixture(scope="module")
def setting():
    cluster = Cluster.build(racks=4, nodes_per_rack=8, gpu_racks=2)
    state = ClusterState(cluster.node_names)
    return cluster, state


def compile_and_solve(state, minimal):
    compiler = StrlCompiler(state, quantum_s=10,
                            minimal_partitioning=minimal)
    compiled = compiler.compile(make_batch_cached)
    res = make_backend("auto").solve(compiled.model)
    return compiled, res


make_batch_cached = None


def test_partitioning_shrinks_milp(benchmark, setting):
    global make_batch_cached
    cluster, state = setting
    make_batch_cached = make_batch(cluster)

    compiled_min, res_min = compile_and_solve(state, minimal=True)

    def run_minimal():
        return compile_and_solve(state, minimal=True)

    benchmark.pedantic(run_minimal, rounds=3, iterations=1)
    compiled_naive, res_naive = compile_and_solve(state, minimal=False)

    rows = [
        ["minimal", compiled_min.stats["variables"],
         compiled_min.stats["constraints"],
         compiled_min.partitioning.num_partitions],
        ["per-node", compiled_naive.stats["variables"],
         compiled_naive.stats["constraints"],
         compiled_naive.partitioning.num_partitions],
    ]
    text = ("Ablation: dynamic minimal partitioning (same batch, both "
            "formulations)\n"
            + format_table(["partitioning", "variables", "constraints",
                            "partitions"], rows))
    save_and_print("ablation_partitions", text)

    # The optimization must shrink the MILP dramatically...
    assert compiled_min.stats["variables"] * 4 < compiled_naive.stats["variables"]
    assert compiled_min.partitioning.num_partitions < 4
    # ...without changing the schedule quality.
    assert res_min.objective == pytest.approx(res_naive.objective, rel=1e-6)
