"""Differential fuzzing across the six-way solver stack.

One instance, every solver configuration: the legacy dense two-phase
tableau as the reference oracle, then the pure branch-and-bound backend
over the revised simplex in dense, sparse, decomposed, parallel
(2 workers), and cache-replay form, plus the scipy/HiGHS backend (dense,
sparse, decomposed) when scipy is importable.  For each result the harness runs
the MILP certificate checker and the schedule auditor, then asserts all
configurations report the same objective.  Any disagreement is a bug in
exactly one layer — the sparse export, the component recombination, the
worker pool, the cache fingerprint, or the compiler itself — and
hypothesis shrinks the offending instance before it is written to a JSON
seed file that ``python -m repro fuzz --replay`` rebuilds without
hypothesis installed.

The harness is deliberately built from public pieces only:
:func:`~repro.verify.instance.build_instance` uses the production STRL
generator and compiler, and the oracles are
:func:`~repro.verify.certificate.check_certificate` and
:func:`~repro.verify.audit.audit_cycle`.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.solver import (BranchBoundOptions, BranchBoundSolver,
                          ComponentCache, ScipyMILPSolver, SolveOptions,
                          make_backend, scipy_available, shutdown_pools,
                          solve_decomposed)
from repro.solver.decompose import decompose
from repro.verify.audit import audit_cycle
from repro.verify.certificate import certify_gap, check_certificate
from repro.verify.instance import FuzzInstance, build_instance

#: Relative tolerance for cross-configuration objective agreement.  The
#: harness solves at ``rel_gap=1e-9`` so every configuration proves its
#: optimum; agreement is then limited only by float evaluation order.
AGREEMENT_TOL = 1e-6
_GAP = 1e-9

#: Configurations allowed to undershoot the oracle by their own *audited*
#: gap (the repair fast path trades exactness for speed); every other
#: configuration must agree with the oracle to :data:`AGREEMENT_TOL`.
GAP_TOLERANT = frozenset({"pure-repair", "pure-repair-colgen"})


class DifferentialFailure(AssertionError):
    """Two solver configurations (or a config and an oracle) disagreed."""


def _configurations(compiled=None):
    """Yield ``(name, solve_fn)`` pairs for every available configuration.

    Each ``solve_fn(model)`` returns a :class:`MILPResult`.  The cached
    configuration solves twice through one :class:`ComponentCache` and
    asserts the replay is bit-equal before returning it — a cache hit that
    drifts from the original solve is itself a differential failure.

    ``compiled`` (the instance's :class:`CompiledBatch`, when available)
    additionally enables the column-generation repair configuration, whose
    lazy groups come from the compiler's column metadata.
    """
    def pure(arrays, lp_engine="revised"):
        solver = BranchBoundSolver(BranchBoundOptions(rel_gap=_GAP,
                                                      arrays=arrays,
                                                      lp_engine=lp_engine))
        return solver.solve

    # The legacy tableau goes first: it is the differential oracle every
    # revised-simplex configuration must agree with.
    yield "pure-tableau", pure("dense", lp_engine="tableau")
    yield "pure-dense", pure("dense")
    yield "pure-sparse", pure("sparse")
    # Force the Markowitz sparse LU even on bases the auto heuristic
    # would hand to the dense LAPACK factor — fuzz instances are small,
    # so without the override this engine would never be exercised.
    yield "pure-sparse-lu", pure("sparse", lp_engine="sparse-lu")

    def pure_decomposed(model):
        return solve_decomposed(
            decompose(model), BranchBoundSolver(BranchBoundOptions(
                rel_gap=_GAP)), SolveOptions())
    yield "pure-decomposed", pure_decomposed

    def pure_parallel(model):
        return solve_decomposed(
            decompose(model), BranchBoundSolver(BranchBoundOptions(
                rel_gap=_GAP)), SolveOptions(workers=2))
    yield "pure-parallel", pure_parallel

    def pure_cached(model):
        cache = ComponentCache()
        backend = BranchBoundSolver(BranchBoundOptions(rel_gap=_GAP))
        opts = SolveOptions(component_cache=cache)
        first = solve_decomposed(decompose(model), backend, opts)
        replay = solve_decomposed(decompose(model), backend, opts)
        if replay.objective != first.objective or (
                (replay.x is None) != (first.x is None)
                or (first.x is not None
                    and not (replay.x == first.x).all())):
            raise DifferentialFailure(
                f"cache replay diverged: objective {replay.objective!r} "
                f"vs first solve {first.objective!r}")
        return replay
    yield "pure-cached", pure_cached

    # Relaxation-repair fast path: LP root (+ lazy columns when compiler
    # metadata is available) and rounding repair, compared against the
    # oracle with a gap tolerance; the forced-escalation auto config must
    # reproduce the exact objective.
    def repair(groups=None, mode="repair", threshold=0.05):
        backend = make_backend("pure", SolveOptions(
            rel_gap=_GAP, solve_mode=mode, repair_gap_threshold=threshold))

        def solve_fn(model):
            return backend.solve(model, SolveOptions(column_groups=groups))
        return solve_fn

    yield "pure-repair", repair()
    if compiled is not None:
        yield "pure-repair-colgen", repair(
            groups=tuple(compiled.lazy_column_groups()))
    # gap > threshold with threshold = -1.0 always holds (gap >= 0), so
    # this config deterministically escalates and must match exactly.
    yield "pure-auto-exact", repair(mode="auto", threshold=-1.0)

    if scipy_available():
        def scipy_solver(use_sparse):
            solver = ScipyMILPSolver(rel_gap=_GAP, use_sparse=use_sparse)
            return solver.solve
        yield "scipy-dense", scipy_solver(False)
        yield "scipy-sparse", scipy_solver(True)

        def scipy_decomposed(model):
            return solve_decomposed(
                decompose(model), ScipyMILPSolver(rel_gap=_GAP),
                SolveOptions())
        yield "scipy-decomposed", scipy_decomposed


def _check_delta_equivalence(state, exprs, quantum_s: float) -> None:
    """Delta-compilation legs: every cached-fragment path must reproduce
    the from-scratch model bit-for-bit (``verify=True`` raises
    :class:`~repro.core.delta.DeltaDivergence` otherwise).

    Covers the cross-cycle cache's distinct paths on this instance: the
    first-cycle full rebuild, an all-clean replay, a removal followed by a
    re-add (which may change the partitioning signature and must fall back
    to a full rebuild), and a dirty recompile of a mutated expression.
    """
    from repro.core.delta import DeltaCompiler, DeltaDivergence
    from repro.strl.ast import Scale

    dc = DeltaCompiler(state, quantum_s)
    try:
        dc.compile_cycle(exprs, verify=True)
        _, replay = dc.compile_cycle(exprs, verify=True)
        if replay.jobs_clean != len(exprs):
            raise DifferentialFailure(
                f"delta replay recompiled {replay.jobs_dirty} fragment(s) "
                f"of an unchanged batch")
        if len(exprs) > 1:
            dc.compile_cycle(exprs[:-1], verify=True)
            dc.compile_cycle(exprs, verify=True)
        mutated = [(job_id, Scale(expr, 2.0)) if i == 0 else (job_id, expr)
                   for i, (job_id, expr) in enumerate(exprs)]
        dc.compile_cycle(mutated, verify=True)
    except DeltaDivergence as exc:
        raise DifferentialFailure(f"delta compilation diverged: {exc}") \
            from exc


def _check_width_mutation_delta(spec: FuzzInstance, state, exprs,
                                quantum_s: float) -> None:
    """Width-mutation delta leg: narrow every elastic job by one width and
    recompile through the same cross-cycle cache.  ``verify=True`` asserts
    each cycle's incremental model is bit-equal to a from-scratch build —
    the elastic analogue of a running gang's per-cycle re-plan, where the
    fragment's option ladder changes between cycles.
    """
    from dataclasses import replace

    from repro.core.delta import DeltaCompiler, DeltaDivergence

    narrowed_spec = replace(spec, jobs=tuple(
        replace(j, k=j.k - 1) if j.elastic and j.k > 1 else j
        for j in spec.jobs))
    if narrowed_spec == spec:
        return
    _, narrowed, _ = build_instance(narrowed_spec)
    dc = DeltaCompiler(state, quantum_s)
    try:
        dc.compile_cycle(exprs, verify=True)
        dc.compile_cycle(narrowed, verify=True)
        dc.compile_cycle(exprs, verify=True)
    except DeltaDivergence as exc:
        raise DifferentialFailure(
            f"delta compilation diverged across a width change: {exc}") \
            from exc


def check_instance(spec: FuzzInstance) -> dict:
    """Run one instance through every configuration and both oracles.

    Returns a summary dict (``{"trivial": True}`` when every job was
    culled); raises :class:`DifferentialFailure` on any disagreement or
    oracle violation.
    """
    state, exprs, compiled = build_instance(spec)
    if compiled is None:
        return {"trivial": True}
    _check_delta_equivalence(state, exprs, spec.quantum_s)
    if any(j.elastic for j in spec.jobs):
        _check_width_mutation_delta(spec, state, exprs, spec.quantum_s)
    objectives: dict[str, float] = {}
    reference: float | None = None
    for name, solve_fn in _configurations(compiled):
        result = solve_fn(compiled.model)
        if not result.status.has_solution:
            raise DifferentialFailure(
                f"{name}: status {result.status.value} on an instance "
                f"where the empty schedule is feasible")
        cert = check_certificate(compiled.model, result)
        if not cert.ok:
            raise DifferentialFailure(
                f"{name}: certificate rejected — "
                + "; ".join(str(v) for v in cert.violations))
        gap_cert = certify_gap(compiled.model, result)
        if not gap_cert.ok:
            raise DifferentialFailure(
                f"{name}: gap certification rejected — "
                + "; ".join(str(v) for v in gap_cert.violations))
        report = audit_cycle(state, compiled, result, exprs,
                             quantum_s=spec.quantum_s)
        if not report.ok:
            raise DifferentialFailure(
                f"{name}: audit rejected — "
                + "; ".join(str(v) for v in report.violations))
        objectives[name] = result.objective
        scale = max(1.0, abs(reference)) if reference is not None else 1.0
        if reference is None:
            reference = result.objective
        elif name in GAP_TOLERANT:
            # The repaired incumbent may undershoot the optimum, but only
            # within its own audited gap — and never overshoot it.
            shortfall = reference - result.objective
            allowance = result.gap * max(1.0, abs(result.objective))
            if shortfall > allowance + AGREEMENT_TOL * scale \
                    or shortfall < -AGREEMENT_TOL * scale:
                raise DifferentialFailure(
                    f"{name} objective {result.objective!r} outside its "
                    f"audited gap {result.gap!r} of the oracle "
                    f"{reference!r} (all so far: {objectives})")
        elif abs(result.objective - reference) > AGREEMENT_TOL * scale:
            raise DifferentialFailure(
                f"{name} objective {result.objective!r} disagrees with "
                f"pure-tableau oracle {reference!r} "
                f"(all so far: {objectives})")
    return {"trivial": False, "jobs": len(exprs),
            "variables": compiled.model.num_variables,
            "objectives": objectives}


def run_fuzz(seed: int = 0, iterations: int = 25,
             seed_file: str | Path = "fuzz-failure.json",
             time_budget: float | None = None) -> int:
    """Differential-fuzz ``iterations`` generated instances.

    Returns 0 when every instance passes, 1 on failure (after hypothesis
    has shrunk the instance and the minimal spec was written to
    ``seed_file`` for replay).  ``time_budget`` (seconds) makes remaining
    draws pass trivially once exceeded, bounding CI wall-clock without a
    flaky hard kill.
    """
    from hypothesis import HealthCheck, Phase, given
    from hypothesis import seed as hyp_seed
    from hypothesis import settings
    from hypothesis import strategies as st  # noqa: F401  (re-export site)

    from repro.verify.strategies import fuzz_instances

    started = time.monotonic()
    last: dict[str, FuzzInstance] = {}
    stats = {"checked": 0, "trivial": 0, "skipped": 0}

    @hyp_seed(seed)
    @settings(max_examples=iterations, database=None, deadline=None,
              suppress_health_check=list(HealthCheck),
              phases=(Phase.generate, Phase.shrink))
    @given(spec=fuzz_instances())
    def property_(spec: FuzzInstance) -> None:
        if time_budget is not None and (
                time.monotonic() - started > time_budget):
            stats["skipped"] += 1
            return
        # Record before checking: after a failure hypothesis re-runs the
        # *shrunk* minimal example last, so this holds the best repro.
        last["spec"] = spec
        summary = check_instance(spec)
        stats["checked"] += 1
        if summary["trivial"]:
            stats["trivial"] += 1

    try:
        property_()
    except Exception as exc:  # noqa: BLE001 - report any failure mode
        spec = last.get("spec")
        if spec is not None:
            Path(seed_file).write_text(spec.to_json() + "\n")
            where = f"; minimal instance written to {seed_file}"
        else:
            where = ""
        print(f"FUZZ FAILURE (seed={seed}): {exc}{where}")
        return 1
    finally:
        shutdown_pools()
    print(f"fuzz ok: seed={seed} instances={stats['checked']} "
          f"(trivial={stats['trivial']}, "
          f"skipped-for-budget={stats['skipped']})")
    return 0


def replay_file(path: str | Path) -> int:
    """Re-run one dumped instance (no hypothesis needed). 0 on pass."""
    spec = FuzzInstance.load(path)
    try:
        summary = check_instance(spec)
    except DifferentialFailure as exc:
        print(f"REPLAY FAILURE: {exc}")
        return 1
    finally:
        shutdown_pools()
    print(f"replay ok: {summary}")
    return 0


__all__ = ["AGREEMENT_TOL", "DifferentialFailure", "check_instance",
           "replay_file", "run_fuzz"]
