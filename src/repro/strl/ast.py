"""STRL abstract syntax tree (Sec. 4 of the paper).

A STRL expression is a function mapping resource space-time shapes to scalar
value; positive value means the expression is satisfied.  The node types are
exactly the paper's primitives and operators:

* :class:`NCk` — "n Choose k": any ``k`` nodes from an equivalence set,
  starting at quantized time ``start`` for ``duration`` quanta, worth
  ``value`` when satisfied (the principal leaf primitive, [R1]);
* :class:`LnCk` — "Linear n Choose k": like :class:`NCk` but accepts any
  count up to ``k`` and yields value proportionally (suppresses enumeration
  over ``k``);
* :class:`ElasticNCk` — malleable gang: choose *one* width ``w`` in
  ``[min_width, max_width]`` with a per-width duration and a monotone
  per-width value (the elastic/malleable extension; desugars to
  ``max`` over per-width ``nCk`` options, so the existing compiler
  combinators and column-group tagging apply unchanged);
* :class:`Max` — choose at most one child (soft constraints / OR, [R2]);
* :class:`Min` — all children must be satisfied (gang / anti-affinity /
  AND, [R3], [R4]);
* :class:`Sum` — aggregate independent children (global scheduling, [R5]);
* :class:`Scale` — multiply a child's value by a scalar;
* :class:`Barrier` — pass value ``v`` iff the child's value reaches ``v``.

Time is quantized: ``start`` and ``duration`` are integer counts of the
scheduler's time quantum, with ``start`` relative to the current cycle
(0 = "now").  Equivalence sets are frozensets of node names; the compiler
maps them onto minimal cluster partitions (Sec. 4.2, TR Appendix A).

All nodes are immutable; construction validates invariants eagerly so that
malformed requests fail at submission, not inside the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StrlError


class StrlNode:
    """Base class for all STRL AST nodes."""

    __slots__ = ()

    def children(self) -> tuple["StrlNode", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["StrlNode"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def leaves(self) -> Iterator["NCk | LnCk"]:
        """All leaf primitives in the tree."""
        for node in self.walk():
            if isinstance(node, (NCk, LnCk)):
                yield node

    @property
    def size(self) -> int:
        """Total number of AST nodes."""
        return sum(1 for _ in self.walk())

    def horizon(self) -> int:
        """Last time quantum touched by any leaf (exclusive end)."""
        return max((leaf.start + leaf.duration for leaf in self.leaves()),
                   default=0)

    def referenced_nodes(self) -> frozenset[str]:
        """Union of all equivalence sets mentioned in the tree."""
        out: set[str] = set()
        for leaf in self.leaves():
            out |= leaf.nodes
        return frozenset(out)

    def max_value(self) -> float:
        """Upper bound on the value this expression can yield.

        Used by the generator to cull zero-value jobs (Sec. 7.3) and by
        tests as a sanity bound on solver objectives.
        """
        raise NotImplementedError


def _check_leaf(nodes: frozenset[str], k: int, start: int, duration: int,
                value: float, kind: str) -> None:
    if not isinstance(nodes, frozenset):
        raise StrlError(f"{kind}: equivalence set must be a frozenset of node names")
    if not nodes:
        raise StrlError(f"{kind}: equivalence set must not be empty")
    if k <= 0:
        raise StrlError(f"{kind}: k must be positive, got {k}")
    if k > len(nodes):
        raise StrlError(f"{kind}: k={k} exceeds equivalence set size {len(nodes)}")
    if start < 0:
        raise StrlError(f"{kind}: start must be >= 0, got {start}")
    if duration <= 0:
        raise StrlError(f"{kind}: duration must be positive, got {duration}")
    if value < 0:
        raise StrlError(f"{kind}: value must be nonnegative, got {value}")


@dataclass(frozen=True)
class NCk(StrlNode):
    """Choose exactly ``k`` nodes from ``nodes`` for ``duration`` quanta."""

    nodes: frozenset[str]
    k: int
    start: int
    duration: int
    value: float

    def __post_init__(self) -> None:
        _check_leaf(self.nodes, self.k, self.start, self.duration,
                    self.value, "nCk")

    def max_value(self) -> float:
        return self.value


@dataclass(frozen=True)
class LnCk(StrlNode):
    """Choose up to ``k`` nodes; value scales linearly with the count chosen."""

    nodes: frozenset[str]
    k: int
    start: int
    duration: int
    value: float

    def __post_init__(self) -> None:
        _check_leaf(self.nodes, self.k, self.start, self.duration,
                    self.value, "LnCk")

    def max_value(self) -> float:
        return self.value


@dataclass(frozen=True)
class ElasticNCk(StrlNode):
    """Malleable gang: exactly one width from ``[min_width, max_width]``.

    A malleable job runs at any gang width in a contiguous range; narrower
    widths take longer (work conservation) and are worth no more than wider
    ones.  ``durations`` and ``value_per_width`` are aligned to widths in
    ascending order (``min_width`` first).  The node behaves exactly like
    ``Max(nCk(w) for w in widths)`` — its :meth:`children` are the
    desugared per-width :class:`NCk` options, widest first, so the
    compiler, the audit oracle, and every tree query (``leaves``,
    ``horizon``, ``max_value``) see ordinary combinators — but it keeps
    the width-range semantics first-class so the auditor can check elastic
    conformance (chosen width within range, value reconciled at the
    *chosen* width) and the delta compiler can detect width-set changes
    through ordinary structural equality.
    """

    nodes: frozenset[str]
    min_width: int
    max_width: int
    start: int
    durations: tuple[int, ...]
    value_per_width: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.min_width <= 0:
            raise StrlError(
                f"elastic: min_width must be positive, got {self.min_width}")
        if self.max_width < self.min_width:
            raise StrlError(
                f"elastic: max_width {self.max_width} < min_width "
                f"{self.min_width}")
        n_widths = self.max_width - self.min_width + 1
        if len(self.durations) != n_widths:
            raise StrlError(
                f"elastic: expected {n_widths} durations "
                f"(one per width), got {len(self.durations)}")
        if len(self.value_per_width) != n_widths:
            raise StrlError(
                f"elastic: expected {n_widths} values "
                f"(one per width), got {len(self.value_per_width)}")
        for lo, hi in zip(self.value_per_width, self.value_per_width[1:]):
            if hi < lo - 1e-12:
                raise StrlError(
                    "elastic: value_per_width must be monotone "
                    f"non-decreasing in width, got {self.value_per_width}")
        # Each desugared width option is a full NCk and inherits its
        # validation (nonempty frozenset, k <= |nodes|, duration > 0, ...).
        options = tuple(
            NCk(self.nodes, self.min_width + i, self.start,
                self.durations[i], self.value_per_width[i])
            for i in reversed(range(n_widths)))
        object.__setattr__(self, "_options", options)

    @property
    def widths(self) -> tuple[int, ...]:
        """Admissible gang widths, ascending."""
        return tuple(range(self.min_width, self.max_width + 1))

    def children(self) -> tuple[StrlNode, ...]:
        """Desugared per-width NCk options, widest (fastest) first."""
        return self._options

    def option_for_width(self, width: int) -> NCk:
        """The desugared NCk option at one admissible width."""
        if not self.min_width <= width <= self.max_width:
            raise StrlError(
                f"elastic: width {width} outside "
                f"[{self.min_width}, {self.max_width}]")
        return self._options[self.max_width - width]

    def max_value(self) -> float:
        return max(self.value_per_width)


def _check_operator(children: tuple[StrlNode, ...], kind: str) -> None:
    if not children:
        raise StrlError(f"{kind}: needs at least one sub-expression")
    for c in children:
        if not isinstance(c, StrlNode):
            raise StrlError(f"{kind}: child {c!r} is not a STRL expression")


@dataclass(frozen=True)
class Max(StrlNode):
    """OR: the solver picks at most one satisfied child (the most valuable)."""

    subexprs: tuple[StrlNode, ...]

    def __init__(self, *subexprs: StrlNode) -> None:
        flat = _flatten(subexprs)
        _check_operator(flat, "max")
        object.__setattr__(self, "subexprs", flat)

    def children(self) -> tuple[StrlNode, ...]:
        return self.subexprs

    def max_value(self) -> float:
        return max(c.max_value() for c in self.subexprs)


@dataclass(frozen=True)
class Min(StrlNode):
    """AND: satisfied iff every child is satisfied; yields the minimum value."""

    subexprs: tuple[StrlNode, ...]

    def __init__(self, *subexprs: StrlNode) -> None:
        flat = _flatten(subexprs)
        _check_operator(flat, "min")
        object.__setattr__(self, "subexprs", flat)

    def children(self) -> tuple[StrlNode, ...]:
        return self.subexprs

    def max_value(self) -> float:
        return min(c.max_value() for c in self.subexprs)


@dataclass(frozen=True)
class Sum(StrlNode):
    """Aggregate independent children; value is the sum of child values."""

    subexprs: tuple[StrlNode, ...]

    def __init__(self, *subexprs: StrlNode) -> None:
        flat = _flatten(subexprs)
        _check_operator(flat, "sum")
        object.__setattr__(self, "subexprs", flat)

    def children(self) -> tuple[StrlNode, ...]:
        return self.subexprs

    def max_value(self) -> float:
        return sum(c.max_value() for c in self.subexprs)


@dataclass(frozen=True)
class Scale(StrlNode):
    """Amplify the child's value by nonnegative scalar ``factor``."""

    subexpr: StrlNode
    factor: float

    def __post_init__(self) -> None:
        if not isinstance(self.subexpr, StrlNode):
            raise StrlError("scale: child is not a STRL expression")
        if self.factor < 0:
            raise StrlError(f"scale: factor must be nonnegative, got {self.factor}")

    def children(self) -> tuple[StrlNode, ...]:
        return (self.subexpr,)

    def max_value(self) -> float:
        return self.factor * self.subexpr.max_value()


@dataclass(frozen=True)
class Barrier(StrlNode):
    """Yield exactly ``threshold`` iff the child's value reaches it."""

    subexpr: StrlNode
    threshold: float

    def __post_init__(self) -> None:
        if not isinstance(self.subexpr, StrlNode):
            raise StrlError("barrier: child is not a STRL expression")
        if self.threshold < 0:
            raise StrlError(
                f"barrier: threshold must be nonnegative, got {self.threshold}")

    def children(self) -> tuple[StrlNode, ...]:
        return (self.subexpr,)

    def max_value(self) -> float:
        return self.threshold if self.subexpr.max_value() >= self.threshold else 0.0


def _flatten(subexprs) -> tuple[StrlNode, ...]:
    """Accept either varargs of nodes or a single iterable of nodes."""
    if len(subexprs) == 1 and not isinstance(subexprs[0], StrlNode):
        try:
            return tuple(subexprs[0])
        except TypeError as exc:
            raise StrlError(f"invalid sub-expressions: {subexprs[0]!r}") from exc
    return tuple(subexprs)
