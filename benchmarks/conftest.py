"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper table/figure, prints its rows/series,
saves them under ``results/``, and asserts the paper's qualitative *shape*
(who wins, by roughly what factor, where crossovers fall).  Absolute numbers
differ from the paper — our substrate is a simulator, not the authors'
256-node testbed — but the shapes must hold.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.  Rendered tables are always written to ``results/<id>.txt``.
"""

from __future__ import annotations

import math
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_and_print(figure_id: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to results/{figure_id}.txt]")


def nanmean(values) -> float:
    clean = [v for v in values if not math.isnan(v)]
    return sum(clean) / len(clean) if clean else math.nan


@pytest.fixture(scope="session")
def figure_cache():
    """Cache figure results across benchmark rounds within a session."""
    cache: dict = {}

    def get(figure_id: str, fn):
        if figure_id not in cache:
            cache[figure_id] = fn()
        return cache[figure_id]

    return get
