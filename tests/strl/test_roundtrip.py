"""STRL parse -> print -> parse round-trips.

The parser docstring promises that "parsed and constructed expressions
compare equal"; these tests pin that down for the documented exemplars,
for every AST node type, and for real generator output.
"""

import pytest

from repro.strl.ast import Barrier, LnCk, Max, Min, NCk, Scale, Sum
from repro.strl.generator import SpaceOption, generate_job_strl
from repro.strl.parser import parse
from repro.strl.printer import to_text
from repro.valuefn import LinearDecayValue, StepValue

#: Textual exemplars from the parser/printer module docstrings.
DOC_EXEMPLARS = [
    "(nCk (set M1 M2) :k 2 :start 0 :dur 2 :v 4)",
    "(LnCk (set M1) :k 1 :start 3 :dur 1 :v 0.5)",
    "(max (nCk (set M1 M2) :k 2 :start 0 :dur 2 :v 4) "
    "(nCk (set M1 M2 M3 M4) :k 2 :start 0 :dur 3 :v 3))",
]


def roundtrip(expr):
    flat = parse(to_text(expr))
    pretty = parse(to_text(expr, indent=2))
    assert flat == expr
    assert pretty == expr
    # Printing the reparsed tree is a fixed point.
    assert to_text(flat) == to_text(expr)


@pytest.mark.parametrize("text", DOC_EXEMPLARS)
def test_docstring_exemplars_roundtrip(text):
    expr = parse(text)
    roundtrip(expr)


def test_all_node_types_roundtrip():
    leaf1 = NCk(frozenset({"n0", "n1"}), k=2, start=0, duration=2, value=4.0)
    leaf2 = LnCk(frozenset({"n2"}), k=1, start=1, duration=3, value=2.5)
    expr = Max((
        Sum((leaf1, Scale(leaf2, 2.0))),
        Min((leaf1, Barrier(leaf2, 3.5))),
    ))
    roundtrip(expr)


def test_non_integral_value_roundtrips():
    leaf = NCk(frozenset({"a"}), k=1, start=0, duration=1, value=0.125)
    assert parse(to_text(leaf)) == leaf


@pytest.mark.parametrize("value_fn", [
    StepValue(value=12.0, deadline=300.0),
    LinearDecayValue(value=8.0, release_time=0.0, decay_horizon=500.0),
])
@pytest.mark.parametrize("plan_ahead", [0, 6])
def test_generator_output_roundtrips(value_fn, plan_ahead):
    options = [
        SpaceOption(frozenset({"r0n0", "r0n1", "r0n2"}), k=2, duration_s=40.0),
        SpaceOption(frozenset({"r1n0", "r1n1"}), k=2, duration_s=80.0,
                    label="slow"),
    ]
    expr = generate_job_strl(options, value_fn, now=0.0, quantum_s=10.0,
                             plan_ahead_quanta=plan_ahead,
                             deadline=400.0)
    assert expr is not None
    roundtrip(expr)
