"""Backend registry: pick a MILP solver by name.

The scheduler core only depends on the tiny :class:`MILPBackend` protocol,
mirroring the paper's pluggable-solver design (CPLEX there; pure-Python
branch-and-bound or scipy/HiGHS here).  All tunables arrive through one
:class:`~repro.solver.options.SolveOptions` value; the scattered per-call
keyword arguments of earlier releases have been removed after their
one-release deprecation window.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SolverError
from repro.solver.branch_bound import BranchBoundOptions, BranchBoundSolver
from repro.solver.model import Model
from repro.solver.options import SolveOptions, resolve
from repro.solver.result import MILPResult
from repro.solver.scipy_backend import ScipyMILPSolver, scipy_available, solve_lp_scipy


class MILPBackend(Protocol):
    """Anything with a ``solve(model, options=None) -> MILPResult``."""

    def solve(self, model: Model,
              options: SolveOptions | None = None) -> MILPResult: ...


#: Names accepted by :func:`make_backend`.
BACKEND_NAMES = ("pure", "pure-sparse-lu", "pure-tableau", "pure-scipy-lp",
                 "scipy", "auto")


def make_backend(name: str = "auto",
                 options: SolveOptions | None = None) -> MILPBackend:
    """Construct a MILP backend.

    Parameters
    ----------
    name:
        * ``"pure"`` — from-scratch branch-and-bound over the bounded-variable
          revised simplex (dual-simplex warm restarts across nodes);
        * ``"pure-sparse-lu"`` — same search with the Markowitz sparse LU
          basis factorization forced on (``"pure"`` picks it automatically
          once the basis is large and sparse enough);
        * ``"pure-tableau"`` — same search over the legacy dense two-phase
          tableau, kept as the differential oracle;
        * ``"pure-scipy-lp"`` — our branch-and-bound over HiGHS LP relaxations;
        * ``"scipy"`` — HiGHS branch-and-cut via ``scipy.optimize.milp``;
        * ``"auto"`` — ``"scipy"`` when available, else ``"pure"``.
    options:
        Solver tunables (gap, budgets, ...); unset fields take the library
        defaults in :data:`repro.solver.options.DEFAULT_OPTIONS`.
        ``solve_mode="repair"`` / ``"auto"`` wraps the named exact backend
        in a :class:`~repro.solver.repair.RepairSolver`: LP relaxation +
        rounding repair with an audited gap, escalating to the wrapped
        exact backend (on dive failure always; on ``gap >
        repair_gap_threshold`` in ``auto`` mode).
    """
    opts = resolve(options)
    exact = _make_exact_backend(name, opts)
    if opts.solve_mode in ("repair", "auto"):
        from repro.solver.repair import RepairSolver
        return RepairSolver(exact, mode=opts.solve_mode,
                            gap_threshold=opts.repair_gap_threshold,
                            rel_gap=opts.rel_gap,
                            time_limit=opts.time_limit)
    if opts.solve_mode != "exact":
        raise SolverError(
            f"unknown solve_mode {opts.solve_mode!r}; "
            "expected 'exact', 'repair' or 'auto'")
    return exact


def _make_exact_backend(name: str, opts: SolveOptions) -> MILPBackend:
    if name == "auto":
        name = "scipy" if scipy_available() else "pure"
    if name == "scipy":
        if not scipy_available():
            raise SolverError("scipy backend requested but scipy is missing")
        return ScipyMILPSolver(rel_gap=opts.rel_gap,
                               time_limit=opts.time_limit)
    if name == "pure":
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit))
    if name == "pure-sparse-lu":
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit, lp_engine="sparse-lu"))
    if name == "pure-tableau":
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit, lp_engine="tableau"))
    if name == "pure-scipy-lp":
        if not scipy_available():
            raise SolverError("pure-scipy-lp backend requested but scipy is missing")
        return BranchBoundSolver(BranchBoundOptions(
            rel_gap=opts.rel_gap, time_limit=opts.time_limit,
            node_limit=opts.node_limit, lp_solver=solve_lp_scipy))
    raise SolverError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def backend_time_limit(backend) -> float | None:
    """The wall-clock budget a backend was configured with, if any.

    Used by :func:`repro.solver.decompose.solve_decomposed` to carve
    per-component budgets when the caller did not pass an explicit cycle
    budget.  Unknown (duck-typed) backends report ``None`` (unlimited).
    """
    if isinstance(backend, BranchBoundSolver):
        return backend.options.time_limit
    return getattr(backend, "time_limit", None)
