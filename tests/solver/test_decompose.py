"""Independent-component decomposition: structure and schedule preservation."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.expr import LinExpr
from repro.solver.backend import make_backend
from repro.solver.branch_bound import BranchBoundSolver
from repro.solver.decompose import decompose, solve_decomposed
from repro.solver.model import Model
from repro.solver.result import SolveStatus


def two_knapsacks(free_ub: float = 1.0) -> Model:
    """Two independent 2-variable knapsacks plus one unconstrained binary."""
    m = Model("pair")
    a1 = m.add_integer("a1", ub=4)
    a2 = m.add_integer("a2", ub=4)
    b1 = m.add_integer("b1", ub=4)
    b2 = m.add_integer("b2", ub=4)
    f = m.add_continuous("free", lb=0.0, ub=free_ub)
    m.add_constraint(2 * a1 + 3 * a2, "<=", 7, name="capA")
    m.add_constraint(4 * b1 + 1 * b2, "<=", 9, name="capB")
    m.set_objective(3 * a1 + 4 * a2 + 2 * b1 + 5 * b2 + 1 * f,
                    sense="maximize")
    return m


def test_decompose_finds_components_and_free_vars():
    m = two_knapsacks()
    d = decompose(m)
    assert d.num_components == 2
    assert d.component_sizes() == [2, 2]
    assert list(d.free_indices) == [4]
    assert d.free_values[0] == pytest.approx(1.0)  # maximize -> ub
    assert d.free_objective == pytest.approx(1.0)


def test_component_constraints_are_local():
    d = decompose(two_knapsacks())
    for comp in d.components:
        assert len(comp.model.constraints) == 1
        assert comp.model.num_variables == 2


def test_decomposed_solve_matches_monolithic():
    m = two_knapsacks()
    mono = BranchBoundSolver().solve(m)
    d = decompose(m)
    res = solve_decomposed(d, BranchBoundSolver())
    assert res.status == SolveStatus.OPTIMAL
    assert res.objective == pytest.approx(mono.objective)
    assert m.check_feasible(res.x)
    assert res.stats["components"] == 2


def test_decomposed_solve_matches_all_backends():
    m = two_knapsacks()
    for name in ("pure", "auto"):
        backend = make_backend(name)
        mono = backend.solve(m)
        res = solve_decomposed(decompose(m), backend)
        assert res.objective == pytest.approx(mono.objective, abs=1e-6)


def test_assemble_scatters_in_source_order():
    d = decompose(two_knapsacks())
    sols = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    x = d.assemble(sols)
    assert list(x) == [1.0, 2.0, 3.0, 4.0, 1.0]


def test_warm_start_slicing():
    m = two_knapsacks()
    d = decompose(m)
    full = np.array([1.0, 1.0, 2.0, 1.0, 0.5])
    ws = d.slice_warm_start(full, d.components[1])
    assert list(ws) == [2.0, 1.0]
    assert d.slice_warm_start(None, d.components[0]) is None


def test_infeasible_component_propagates():
    m = two_knapsacks()
    # Make block B infeasible: b1 + b2 >= 100 with ub 4 each.
    b1 = m.variables[2]
    b2 = m.variables[3]
    m.add_constraint(LinExpr({b1.index: 1.0, b2.index: 1.0}), ">=", 100)
    res = solve_decomposed(decompose(m), BranchBoundSolver())
    assert res.status == SolveStatus.INFEASIBLE


def test_unbounded_free_variable_raises():
    m = Model("unb")
    m.add_continuous("x", lb=0.0, ub=None)
    m.set_objective(LinExpr({0: 1.0}), sense="maximize")
    with pytest.raises(SolverError):
        decompose(m)


def test_fully_connected_model_is_one_component():
    m = Model("one")
    x = m.add_integer("x", ub=3)
    y = m.add_integer("y", ub=3)
    z = m.add_integer("z", ub=3)
    m.add_constraint(1 * x + 1 * y, "<=", 4)
    m.add_constraint(1 * y + 1 * z, "<=", 4)
    m.set_objective(1 * x + 2 * y + 3 * z, sense="maximize")
    d = decompose(m)
    assert d.num_components == 1
    assert d.component_sizes() == [3]
    res = solve_decomposed(d, BranchBoundSolver())
    assert res.objective == pytest.approx(
        BranchBoundSolver().solve(m).objective)


def test_all_free_model():
    m = Model("free-only")
    m.add_integer("x", ub=3)
    m.add_continuous("y", lb=0.0, ub=2.0)
    m.set_objective(LinExpr({0: 2.0, 1: 1.0}), sense="maximize")
    d = decompose(m)
    assert d.num_components == 0
    res = solve_decomposed(d, BranchBoundSolver())
    assert res.status == SolveStatus.OPTIMAL
    assert res.objective == pytest.approx(8.0)
    assert list(res.x) == [3.0, 2.0]


class TestDegenerateInputs:
    def test_empty_model(self):
        m = Model("empty")
        d = decompose(m)
        assert d.num_components == 0
        assert d.component_sizes() == []
        res = solve_decomposed(d, BranchBoundSolver())
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)
        assert res.x is not None and res.x.size == 0

    def test_single_variable_components(self):
        # Every constraint touches exactly one variable: each variable is
        # its own component, none are "free".
        m = Model("singletons")
        xs = [m.add_integer(f"x{i}", ub=5) for i in range(4)]
        for i, x in enumerate(xs):
            m.add_constraint(1 * x, "<=", i + 1)
        m.set_objective(sum(1 * x for x in xs), sense="maximize")
        d = decompose(m)
        assert d.num_components == 4
        assert d.component_sizes() == [1, 1, 1, 1]
        assert d.free_indices.size == 0
        res = solve_decomposed(d, BranchBoundSolver())
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(1 + 2 + 3 + 4)
        assert res.objective == pytest.approx(
            BranchBoundSolver().solve(m).objective)

    def test_chain_collapses_to_one_giant_component(self):
        # A chain x0-x1, x1-x2, ... makes union-find merge everything into
        # a single component the size of the model (the worst case for the
        # decomposition: no speedup, but identical answers).
        n = 8
        m = Model("chain")
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        for a, b in zip(xs, xs[1:]):
            m.add_constraint(1 * a + 1 * b, "<=", 1)
        m.set_objective(sum((i + 1) * x for i, x in enumerate(xs)),
                        sense="maximize")
        d = decompose(m)
        assert d.num_components == 1
        assert d.component_sizes() == [n]
        res = solve_decomposed(d, BranchBoundSolver())
        assert res.objective == pytest.approx(
            BranchBoundSolver().solve(m).objective)
