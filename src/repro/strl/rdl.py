"""Rayon's Reservation Definition Language (RDL), minimal subset (Sec. 4.4).

Rayon reservation requests arrive as RDL expressions; the paper's example::

    Window(s=0, f=3, Atom(b=<16GB,8c>, k=2, gang=2, dur=3))

reserves a gang of 2 containers for 3 time units anywhere in the window
[0, 3].  The STRL Generator combines this coarse reservation information with
framework-plugin knowledge (placement preferences, slowdowns) to produce the
fine-grained STRL expression.

We implement the subset the evaluation exercises: a ``Window`` bounding a
single gang ``Atom``.  :func:`rdl_to_strl` performs the direct translation of
Sec. 4.4 (unconstrained placement); heterogeneous preferences enter through
:func:`repro.strl.generator.generate_job_strl` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StrlError
from repro.strl.ast import Max, NCk, StrlNode
from repro.strl.generator import quantize_duration


@dataclass(frozen=True)
class Atom:
    """A reservation for ``k`` identical containers over ``duration_s``.

    ``bundle`` describes the per-container resource shape (informational in
    our node-granular model, e.g. ``"<16GB,8c>"``); ``gang`` is the number of
    containers that must be allocated simultaneously.  We require full gangs
    (``gang == k``), matching the paper's workloads.
    """

    bundle: str
    k: int
    gang: int
    duration_s: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise StrlError(f"Atom: k must be positive, got {self.k}")
        if self.gang != self.k:
            raise StrlError(
                f"Atom: only full gangs are supported (gang={self.gang}, k={self.k})")
        if self.duration_s <= 0:
            raise StrlError("Atom: duration must be positive")


@dataclass(frozen=True)
class Window:
    """Bounds the time range in which the child ``Atom`` may be placed."""

    start_s: float
    finish_s: float
    atom: Atom

    def __post_init__(self) -> None:
        if self.finish_s <= self.start_s:
            raise StrlError("Window: finish must be after start")

    @property
    def deadline(self) -> float:
        """The reservation's implied completion deadline."""
        return self.finish_s

    @property
    def feasible(self) -> bool:
        """Whether the atom can complete inside the window at all."""
        return self.start_s + self.atom.duration_s <= self.finish_s + 1e-9


def rdl_to_strl(window: Window, nodes: frozenset[str], quantum_s: float,
                now: float = 0.0, value: float = 1.0) -> StrlNode | None:
    """Translate an RDL window into STRL (the Sec. 4.4 direct mapping).

    Produces ``max`` over every feasible quantized start time of an ``nCk``
    drawing ``k`` nodes from the whole given node set.  Returns ``None`` when
    the window cannot fit the atom (infeasible reservation).
    """
    atom = window.atom
    if atom.k > len(nodes):
        return None
    dur_q = quantize_duration(atom.duration_s, quantum_s)
    first_q = max(0, math.ceil((window.start_s - now) / quantum_s - 1e-9))
    # Last start such that start + dur completes by the window finish.
    last_q = math.floor((window.finish_s - now) / quantum_s + 1e-9) - dur_q
    if last_q < first_q:
        return None
    leaves = [NCk(nodes=nodes, k=atom.k, start=s, duration=dur_q, value=value)
              for s in range(first_q, last_q + 1)]
    if len(leaves) == 1:
        return leaves[0]
    return Max(*leaves)
