"""Jobs and job types for the simulator.

Job types reproduce the paper's three preference classes (Sec. 6.2.1):

* **Unconstrained** — no placement preference; any ``k`` nodes.
* **GPU** — prefers GPU-labeled nodes; on any non-GPU node the job runs
  ``slowdown`` times longer (a simple non-combinatorial soft constraint).
* **MPI** — prefers all ``k`` tasks on one rack (any rack); spreading across
  racks slows the whole job down (a combinatorial constraint).

Each type produces the *estimated* placement options handed to the scheduler
(STRL generation feeds on these) and computes the *true* runtime of a
concrete placement.  Mis-estimation (the Sec. 7.1 sweep) is carried on the
job: the scheduler sees ``true * (1 + error)``, the simulator runs the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.cluster import Cluster
from repro.errors import WorkloadError
from repro.strl.generator import SpaceOption


class JobType(Protocol):
    """Placement-preference behaviour of a job class."""

    name: str

    def options(self, cluster: Cluster, k: int,
                runtime_s: float) -> tuple[SpaceOption, ...]:
        """Placement options with per-option runtimes (preferred first)."""
        ...

    def true_runtime(self, cluster: Cluster, nodes: frozenset[str],
                     base_runtime_s: float, k: int) -> float:
        """Actual runtime on a concrete placement.

        ``base_runtime_s`` is the runtime on the *preferred* placement and
        ``k`` the job's requested gang size (the maximum width for elastic
        types).
        """
        ...


@dataclass(frozen=True)
class UnconstrainedType:
    """Any k nodes; runtime independent of placement."""

    name: str = "unconstrained"

    def options(self, cluster: Cluster, k: int,
                runtime_s: float) -> tuple[SpaceOption, ...]:
        return (SpaceOption(cluster.node_names, k=k, duration_s=runtime_s,
                            label="any"),)

    def true_runtime(self, cluster: Cluster, nodes: frozenset[str],
                     base_runtime_s: float, k: int) -> float:
        return base_runtime_s


@dataclass(frozen=True)
class GpuType:
    """Prefers GPU nodes; non-GPU placement runs ``slowdown`` times longer."""

    slowdown: float = 1.5
    name: str = "gpu"

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise WorkloadError("slowdown must be >= 1")

    def options(self, cluster: Cluster, k: int,
                runtime_s: float) -> tuple[SpaceOption, ...]:
        gpu_nodes = cluster.nodes_with_attr("gpu")
        opts = []
        if len(gpu_nodes) >= k:
            opts.append(SpaceOption(gpu_nodes, k=k, duration_s=runtime_s,
                                    label="gpu"))
        opts.append(SpaceOption(cluster.node_names, k=k,
                                duration_s=runtime_s * self.slowdown,
                                label="fallback"))
        return tuple(opts)

    def true_runtime(self, cluster: Cluster, nodes: frozenset[str],
                     base_runtime_s: float, k: int) -> float:
        # "Any task placed on a sub-optimal node runs slower" — the gang
        # completes when its slowest task does.
        if all(cluster.node(n).has_attr("gpu") for n in nodes):
            return base_runtime_s
        return base_runtime_s * self.slowdown


@dataclass(frozen=True)
class MpiType:
    """Prefers rack-local placement (any single rack); spreading slows it."""

    slowdown: float = 1.5
    name: str = "mpi"

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise WorkloadError("slowdown must be >= 1")

    def options(self, cluster: Cluster, k: int,
                runtime_s: float) -> tuple[SpaceOption, ...]:
        opts = []
        for rack in cluster.rack_names:
            members = cluster.rack_nodes(rack)
            if len(members) >= k:
                opts.append(SpaceOption(members, k=k, duration_s=runtime_s,
                                        label=f"rack:{rack}"))
        opts.append(SpaceOption(cluster.node_names, k=k,
                                duration_s=runtime_s * self.slowdown,
                                label="spread"))
        return tuple(opts)

    def true_runtime(self, cluster: Cluster, nodes: frozenset[str],
                     base_runtime_s: float, k: int) -> float:
        if len(cluster.racks_of(nodes)) <= 1:
            return base_runtime_s
        return base_runtime_s * self.slowdown


@dataclass(frozen=True)
class ElasticType:
    """Malleable parallelism: any width from ``min_k`` up to the gang size.

    Implements the paper's space-time elasticity ("General space-time
    elasticity of jobs can be expressed using MAX to select among possible
    2D space-time shapes", Sec. 4.1): the job carries a fixed amount of
    work; wider allocations finish proportionally faster.  ``Job.k`` is the
    *maximum* parallelism and ``base_runtime_s`` the runtime at that width,
    so total work is ``base_runtime_s * k`` node-seconds.

    ``efficiency`` < 1 models imperfect scaling: each halving of width
    costs slightly less than double the time, making wide allocations
    mildly preferred even before the earliness bias.
    """

    min_k: int = 1
    efficiency: float = 1.0
    name: str = "elastic"

    def __post_init__(self) -> None:
        if self.min_k < 1:
            raise WorkloadError("min_k must be >= 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise WorkloadError("efficiency must be in (0, 1]")

    def _runtime_at(self, width: int, k: int, runtime_s: float) -> float:
        """Runtime when running at ``width`` nodes (reference width ``k``).

        Total work is ``runtime_s * k`` node-seconds; narrower widths pay a
        1/efficiency scaling penalty.
        """
        penalty = 1.0 if width >= k else 1.0 / self.efficiency
        return runtime_s * k * penalty / width

    def options(self, cluster: Cluster, k: int,
                runtime_s: float) -> tuple[SpaceOption, ...]:
        lo = min(self.min_k, k)
        opts = []
        for width in range(k, lo - 1, -1):  # widest (fastest) first
            opts.append(SpaceOption(
                cluster.node_names, k=width,
                duration_s=self._runtime_at(width, k, runtime_s),
                label=f"width:{width}"))
        return tuple(opts)

    def true_runtime(self, cluster: Cluster, nodes: frozenset[str],
                     base_runtime_s: float, k: int) -> float:
        return self._runtime_at(len(nodes), k, base_runtime_s)


@dataclass
class Job:
    """One simulated job.

    Attributes
    ----------
    job_id:
        Unique identifier.
    job_type:
        Placement-preference behaviour (:class:`UnconstrainedType`, ...).
    k:
        Gang size in nodes.
    base_runtime_s:
        *True* runtime on the preferred placement.
    submit_time:
        Arrival time (absolute seconds).
    deadline:
        Absolute completion deadline for SLO jobs, ``None`` for best-effort.
    estimate_error:
        Relative runtime mis-estimation: the scheduler and the reservation
        system see ``base_runtime_s * (1 + estimate_error)``.  Negative =
        under-estimation (Sec. 6.3).
    """

    job_id: str
    job_type: JobType
    k: int
    base_runtime_s: float
    submit_time: float
    deadline: float | None = None
    estimate_error: float = 0.0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise WorkloadError(f"job {self.job_id!r}: k must be positive")
        if self.base_runtime_s <= 0:
            raise WorkloadError(f"job {self.job_id!r}: runtime must be positive")
        if self.estimate_error <= -1.0:
            raise WorkloadError(
                f"job {self.job_id!r}: estimate error must be > -100%")

    @property
    def is_slo(self) -> bool:
        return self.deadline is not None

    @property
    def estimated_runtime_s(self) -> float:
        """Runtime as reported to Rayon and the scheduler."""
        return self.base_runtime_s * (1.0 + self.estimate_error)

    def estimated_options(self, cluster: Cluster) -> tuple[SpaceOption, ...]:
        """Placement options with (mis-)estimated durations."""
        return self.job_type.options(cluster, self.k, self.estimated_runtime_s)

    def true_runtime_on(self, cluster: Cluster, nodes: frozenset[str]) -> float:
        """Actual runtime for a concrete placement (simulator ground truth)."""
        return self.job_type.true_runtime(cluster, nodes,
                                          self.base_runtime_s, self.k)
