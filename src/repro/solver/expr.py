"""Linear expressions and decision variables for the MILP substrate.

The paper compiles STRL expressions to a Mixed Integer Linear Program
(Sec. 5).  This module provides the building blocks of such programs:
:class:`Variable` (continuous, integer, or binary decision variables) and
:class:`LinExpr` (affine expressions over them).

Variables are created through :class:`repro.solver.model.Model`; they carry a
dense integer ``index`` into the model's column space, which keeps expression
arithmetic dictionary-based and cheap.

Example
-------
>>> from repro.solver.model import Model
>>> m = Model("demo")
>>> x = m.add_integer("x", lb=0, ub=5)
>>> y = m.add_binary("y")
>>> e = 2 * x + 3 * y + 1
>>> e.coefficient(x), e.coefficient(y), e.constant
(2.0, 3.0, 1.0)
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from repro.errors import ModelError

Number = Union[int, float]

#: Domain tag for continuous variables.
CONTINUOUS = "continuous"
#: Domain tag for general integer variables.
INTEGER = "integer"
#: Domain tag for 0/1 variables.
BINARY = "binary"

_DOMAINS = (CONTINUOUS, INTEGER, BINARY)


class Variable:
    """A single decision variable owned by a :class:`~repro.solver.model.Model`.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within the owning model.
    index:
        Dense column index assigned by the model.
    lb, ub:
        Lower / upper bound.  ``ub`` may be ``None`` for unbounded above.
        ``lb`` may be ``None`` for unbounded below (continuous only).
    domain:
        One of :data:`CONTINUOUS`, :data:`INTEGER`, :data:`BINARY`.
    """

    __slots__ = ("name", "index", "lb", "ub", "domain")

    def __init__(self, name: str, index: int, lb: Number | None, ub: Number | None,
                 domain: str) -> None:
        if domain not in _DOMAINS:
            raise ModelError(f"unknown variable domain {domain!r}")
        if domain == BINARY:
            lb, ub = 0.0, 1.0
        if lb is not None and ub is not None and lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        if domain in (INTEGER, BINARY) and lb is None:
            raise ModelError(f"integer variable {name!r} needs a finite lower bound")
        self.name = name
        self.index = index
        self.lb = float(lb) if lb is not None else None
        self.ub = float(ub) if ub is not None else None
        self.domain = domain

    @property
    def is_integral(self) -> bool:
        """True for integer and binary variables."""
        return self.domain in (INTEGER, BINARY)

    # -- arithmetic: variables promote to LinExpr -------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-1.0 * self._as_expr()) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return self._as_expr() * k

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, domain={self.domain}, lb={self.lb}, ub={self.ub})"


class LinExpr:
    """An affine expression ``sum_i coef_i * x_i + constant``.

    Internally a mapping ``{variable index -> coefficient}`` plus a constant.
    Immutable-by-convention: arithmetic returns new expressions, but
    :meth:`add_term` mutates in place for use in hot construction loops.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None,
                 constant: Number = 0.0) -> None:
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- construction helpers ---------------------------------------------
    @staticmethod
    def from_terms(terms: Iterable[tuple[Variable, Number]],
                   constant: Number = 0.0) -> "LinExpr":
        """Build an expression from ``(variable, coefficient)`` pairs."""
        e = LinExpr(constant=constant)
        for var, coef in terms:
            e.add_term(var, coef)
        return e

    def add_term(self, var: Variable, coef: Number) -> "LinExpr":
        """In-place ``self += coef * var``; returns self for chaining."""
        c = self.coeffs.get(var.index, 0.0) + float(coef)
        if c == 0.0:
            self.coeffs.pop(var.index, None)
        else:
            self.coeffs[var.index] = c
        return self

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` in this expression (0.0 if absent)."""
        return self.coeffs.get(var.index, 0.0)

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "ExprLike") -> "LinExpr":
        out = self.copy()
        if isinstance(other, LinExpr):
            for idx, coef in other.coeffs.items():
                c = out.coeffs.get(idx, 0.0) + coef
                if c == 0.0:
                    out.coeffs.pop(idx, None)
                else:
                    out.coeffs[idx] = c
            out.constant += other.constant
        elif isinstance(other, Variable):
            return out + other._as_expr()
        elif isinstance(other, (int, float)):
            out.constant += float(other)
        else:
            return NotImplemented
        return out

    __radd__ = __add__

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        if isinstance(other, Variable):
            other = other._as_expr()
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, k: Number) -> "LinExpr":
        if not isinstance(k, (int, float)):
            return NotImplemented
        k = float(k)
        if k == 0.0:
            return LinExpr()
        return LinExpr({i: c * k for i, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        if not terms:
            return f"LinExpr({self.constant:g})"
        if self.constant:
            return f"LinExpr({terms} + {self.constant:g})"
        return f"LinExpr({terms})"


ExprLike = Union[LinExpr, Variable, int, float]


def as_expr(value: ExprLike) -> LinExpr:
    """Coerce a variable or number to a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Variable):
        return value._as_expr()
    if isinstance(value, (int, float)):
        return LinExpr(constant=value)
    raise ModelError(f"cannot coerce {value!r} to a linear expression")


def linear_sum(values: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into one LinExpr.

    Faster and clearer than ``sum(...)`` for large collections because it
    mutates a single accumulator.
    """
    acc = LinExpr()
    for v in values:
        if isinstance(v, Variable):
            acc.add_term(v, 1.0)
        elif isinstance(v, LinExpr):
            for idx, coef in v.coeffs.items():
                c = acc.coeffs.get(idx, 0.0) + coef
                if c == 0.0:
                    acc.coeffs.pop(idx, None)
                else:
                    acc.coeffs[idx] = c
            acc.constant += v.constant
        elif isinstance(v, (int, float)):
            acc.constant += float(v)
        else:
            raise ModelError(f"cannot sum {v!r}")
    return acc
