"""Tests for PlanAccumulator and Allocation."""

import pytest

from repro.cluster import ClusterState, Partitioning
from repro.core import Allocation, PlanAccumulator
from repro.errors import SchedulerError

UNIVERSE = frozenset({"a", "b", "c", "d"})


@pytest.fixture()
def state():
    return ClusterState(UNIVERSE)


class TestAllocation:
    def test_valid(self):
        a = Allocation("j", frozenset({"a"}), 0.0, 10.0)
        assert a.nodes == frozenset({"a"})

    def test_empty_nodes_rejected(self):
        with pytest.raises(SchedulerError):
            Allocation("j", frozenset(), 0.0, 10.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(SchedulerError):
            Allocation("j", frozenset({"a"}), 10.0, 10.0)


class TestPlanAccumulator:
    def test_seeds_from_running_jobs(self, state):
        state.start("r", frozenset({"a"}), 0.0, 25.0)
        acc = PlanAccumulator(state, now=0.0, quantum_s=10.0)
        assert not acc.is_free("a", 0, 1)
        assert not acc.is_free("a", 2, 1)
        assert acc.is_free("a", 3, 1)
        assert acc.is_free("b", 0, 5)

    def test_reserve_and_conflict(self, state):
        acc = PlanAccumulator(state, 0.0, 10.0)
        acc.reserve(["a"], 1, 2)
        assert acc.is_free("a", 0, 1)
        assert not acc.is_free("a", 1, 2)
        with pytest.raises(SchedulerError):
            acc.reserve(["a"], 2, 1)

    def test_availability_profile_counts(self, state):
        state.start("r", frozenset({"a"}), 0.0, 15.0)
        acc = PlanAccumulator(state, 0.0, 10.0)
        acc.reserve(["b"], 1, 1)
        assert acc.availability_profile(UNIVERSE, 3, 0.0, 10.0) == [3, 2, 4]

    def test_interval_free_count(self, state):
        acc = PlanAccumulator(state, 0.0, 10.0)
        acc.reserve(["a"], 0, 1)
        acc.reserve(["b"], 1, 1)
        # Whole interval [0,2): only c,d free both quanta.
        assert acc.interval_free_count(UNIVERSE, 0, 2) == 2

    def test_pick_reserves_chosen_nodes(self, state):
        part = Partitioning(UNIVERSE, [UNIVERSE])
        acc = PlanAccumulator(state, 0.0, 10.0)
        nodes = acc.pick(part, {0: 2}, 0, 2)
        assert len(nodes) == 2
        for n in nodes:
            assert not acc.is_free(n, 0, 2)

    def test_pick_insufficient_raises(self, state):
        part = Partitioning(UNIVERSE, [UNIVERSE])
        acc = PlanAccumulator(state, 0.0, 10.0)
        acc.reserve(["a", "b", "c"], 0, 1)
        with pytest.raises(SchedulerError):
            acc.pick(part, {0: 2}, 0, 1)

    def test_pick_deterministic(self, state):
        part = Partitioning(UNIVERSE, [UNIVERSE])
        acc1 = PlanAccumulator(state, 0.0, 10.0)
        acc2 = PlanAccumulator(state, 0.0, 10.0)
        assert acc1.pick(part, {0: 2}, 0, 1) == acc2.pick(part, {0: 2}, 0, 1)

    def test_unreserve_releases_capacity(self, state):
        part = Partitioning(UNIVERSE, [UNIVERSE])
        acc = PlanAccumulator(state, 0.0, 10.0)
        nodes = acc.pick(part, {0: 2}, 0, 2)
        acc.unreserve(nodes, 0, 2)
        for n in nodes:
            assert acc.is_free(n, 0, 2)
        # The freed quanta are reservable again.
        acc.reserve(sorted(nodes), 0, 2)

    def test_unreserve_partial_span_keeps_rest(self, state):
        acc = PlanAccumulator(state, 0.0, 10.0)
        acc.reserve(["a"], 0, 3)
        acc.unreserve(frozenset({"a"}), 2, 1)
        assert not acc.is_free("a", 0, 2)
        assert acc.is_free("a", 2, 1)

    def test_unreserve_unreserved_raises(self, state):
        acc = PlanAccumulator(state, 0.0, 10.0)
        with pytest.raises(SchedulerError):
            acc.unreserve(frozenset({"a"}), 0, 1)
