"""Tests for workload JSON serialization."""

import pytest

from repro.cluster import Cluster
from repro.errors import WorkloadError
from repro.sim import GpuType, Job, MpiType, UnconstrainedType
from repro.workloads import GS_HET, GridmixConfig, generate_workload
from repro.workloads.serialization import (dump_workload, job_from_dict,
                                           job_to_dict, load_workload,
                                           load_workload_file,
                                           save_workload_file)


def sample_jobs():
    return [
        Job("u", UnconstrainedType(), 2, 30.0, 0.0),
        Job("g", GpuType(slowdown=2.0), 3, 40.0, 5.0, deadline=100.0),
        Job("m", MpiType(slowdown=1.5), 4, 50.0, 10.0, deadline=200.0,
            estimate_error=-0.5),
    ]


class TestRoundTrip:
    def test_dump_load_roundtrip(self):
        jobs = sample_jobs()
        loaded = load_workload(dump_workload(jobs))
        assert len(loaded) == 3
        for orig, back in zip(jobs, loaded):
            assert back.job_id == orig.job_id
            assert type(back.job_type) is type(orig.job_type)
            assert back.k == orig.k
            assert back.base_runtime_s == orig.base_runtime_s
            assert back.deadline == orig.deadline
            assert back.estimate_error == orig.estimate_error

    def test_slowdown_preserved(self):
        g = Job("g", GpuType(slowdown=2.0), 1, 10.0, 0.0)
        back = job_from_dict(job_to_dict(g))
        assert back.job_type.slowdown == 2.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "wl.json"
        save_workload_file(sample_jobs(), path)
        loaded = load_workload_file(path)
        assert [j.job_id for j in loaded] == ["u", "g", "m"]

    def test_generated_workload_roundtrip(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
        jobs = generate_workload(GS_HET, cluster,
                                 GridmixConfig(num_jobs=20, seed=9))
        loaded = load_workload(dump_workload(jobs))
        assert [(j.job_id, j.k, j.submit_time) for j in loaded] == \
            [(j.job_id, j.k, j.submit_time) for j in jobs]


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(WorkloadError):
            load_workload("{nope")

    def test_wrong_version(self):
        with pytest.raises(WorkloadError):
            load_workload('{"version": 99, "jobs": []}')

    def test_missing_field(self):
        with pytest.raises(WorkloadError):
            job_from_dict({"job_id": "x"})

    def test_unknown_type(self):
        with pytest.raises(WorkloadError):
            job_from_dict({"job_id": "x", "type": {"name": "quantum"},
                           "k": 1, "base_runtime_s": 1.0, "submit_time": 0.0})

    def test_unserializable_type(self):
        class Weird:
            name = "weird"
        job = Job("w", UnconstrainedType(), 1, 1.0, 0.0)
        object.__setattr__(job, "job_type", Weird())
        with pytest.raises(WorkloadError):
            job_to_dict(job)
