"""ASCII rendering of tables and sweep series for the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.experiments.sweeps import SweepResult
from repro.obs.profile import RunProfile
from repro.obs.report import render_profile

#: Human-readable labels for metric keys.
METRIC_LABELS = {
    "slo_total_pct": "SLO Attainment, all SLO jobs (%)",
    "slo_accepted_pct": "SLO Attainment, accepted SLO jobs (%)",
    "slo_no_reservation_pct": "SLO Attainment, SLO w/o reservation (%)",
    "mean_be_latency_s": "Mean Best-Effort Latency (s)",
}


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width ASCII table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_sweep_metric(sweep: SweepResult, metric: str,
                        title: str = "") -> str:
    """One metric of a sweep as a table: rows = schedulers, cols = x."""
    headers = [sweep.x_label] + [_fmt(float(x)) for x in sweep.x_values]
    rows = []
    for scheduler in sweep.schedulers:
        rows.append([scheduler] + list(sweep.get(scheduler, metric)))
    heading = title or METRIC_LABELS.get(metric, metric)
    return f"{heading}\n{format_table(headers, rows)}"


def format_sweep(sweep: SweepResult, metrics: Sequence[str],
                 title: str = "") -> str:
    """Render several metrics of one sweep, paper-figure style."""
    blocks = [format_sweep_metric(sweep, m) for m in metrics]
    body = "\n\n".join(blocks)
    if title:
        rule = "=" * len(title)
        return f"{title}\n{rule}\n{body}"
    return body


def shape_check(description: str, condition: bool) -> str:
    """One-line pass/fail annotation for a paper-shape assertion."""
    return f"  [{'ok' if condition else 'DIVERGES'}] {description}"


def format_profile(profile: RunProfile, title: str = "Run profile") -> str:
    """Render a per-run observability profile (see :mod:`repro.obs`)."""
    return render_profile(profile, title=title)


def solver_work_table(sweep: SweepResult, x_values: Sequence,
                      counter: str, per: str = "cycles") -> str:
    """Solver-work counters per x-value: ``counter`` normalized by ``per``.

    Reads the :class:`~repro.obs.profile.RunProfile` attached to every raw
    run of the sweep, so figures can report solver effort (MILP size, B&B
    nodes, LP iterations) rather than only machine-dependent wall-clock.
    """
    headers = [sweep.x_label] + [_fmt(float(x)) for x in x_values]
    rows = []
    for scheduler in sweep.schedulers:
        row = [scheduler]
        for x in x_values:
            runs = sweep.raw[(scheduler, x)]
            total = sum(r.profile.counter(counter) for r in runs)
            denom = sum(r.profile.counter(per) for r in runs)
            row.append(total / denom if denom else 0.0)
        rows.append(row)
    return format_table(headers, rows)
