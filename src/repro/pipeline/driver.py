"""Runs a cycle's stages in order, timing each under an obs span."""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.pipeline.stages import (Audit, Compilation, Decompose, Extract,
                                   GreedyScheduling, ModelBuild, Solve, Stage,
                                   StrlGeneration)

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import CycleContext


class CyclePipeline:
    """An ordered list of stages plus the loop that drives them.

    Each stage runs under ``obs.span(stage.name)`` (nested under the
    scheduler's ``"cycle"`` span) and its wall-clock time accumulates in
    ``ctx.stage_timings[stage.name]``.  A stage that calls ``ctx.halt()``
    stops the cycle; stages after it never run.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages: tuple[Stage, ...] = tuple(stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: "CycleContext") -> "CycleContext":
        for stage in self.stages:
            if ctx.halted:
                break
            t0 = time.monotonic()
            with obs.span(stage.name):
                stage.run(ctx)
            ctx.stage_timings[stage.name] = (
                ctx.stage_timings.get(stage.name, 0.0)
                + time.monotonic() - t0)
        return ctx


def global_pipeline(audit: bool = False) -> CyclePipeline:
    """The full global-rescheduling cycle (paper Sec. 3 + sparse core).

    With ``audit=True`` (``TetriSchedConfig.audit_mode``) an extra final
    stage replays every solve through the :mod:`repro.verify` oracles and
    raises on the first cycle that fails the certificate or the
    space-time schedule audit.
    """
    stages: list[Stage] = [StrlGeneration(), Compilation(), ModelBuild(),
                           Decompose(), Solve(), Extract()]
    if audit:
        stages.append(Audit())
    return CyclePipeline(stages)


def greedy_pipeline() -> CyclePipeline:
    """The -NG ablation cycle: generate, then schedule one job at a time."""
    return CyclePipeline([StrlGeneration(), GreedyScheduling()])
