"""Optional scipy (HiGHS) backends.

The paper stresses that "the internal MILP model can be translated to any
MILP backend" (Sec. 3.2.2).  When scipy is installed, these backends give a
large speedup over the pure-Python simplex/branch-and-bound pair and are the
default for the benchmark harness.  The library degrades gracefully to the
pure backend when scipy is absent.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.solver.model import Model
from repro.solver.options import SolveOptions
from repro.solver.result import LPResult, MILPResult, SolveStatus

try:  # pragma: no cover - environment-dependent
    from scipy import optimize as _sciopt

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _sciopt = None
    HAVE_SCIPY = False


def scipy_available() -> bool:
    """True when scipy's HiGHS solvers can be used."""
    return HAVE_SCIPY


def solve_lp_scipy(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None,
                   lb=None, ub=None, **_ignored) -> LPResult:
    """LP relaxation via ``scipy.optimize.linprog`` (HiGHS).

    Drop-in replacement for :func:`repro.solver.simplex.solve_lp`, usable as
    the ``lp_solver`` of :class:`~repro.solver.branch_bound.BranchBoundSolver`.
    """
    if not HAVE_SCIPY:
        raise SolverError("scipy is not installed")
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    if np.any(lb > ub):
        return LPResult(SolveStatus.INFEASIBLE, None, np.inf)
    res = _sciopt.linprog(
        c,
        A_ub=a_ub if a_ub is not None and np.size(a_ub) else None,
        b_ub=b_ub if b_ub is not None and np.size(b_ub) else None,
        A_eq=a_eq if a_eq is not None and np.size(a_eq) else None,
        b_eq=b_eq if b_eq is not None and np.size(b_eq) else None,
        bounds=np.column_stack([lb, ub]),
        method="highs")
    if res.status == 2:
        return LPResult(SolveStatus.INFEASIBLE, None, np.inf)
    if res.status == 3:
        return LPResult(SolveStatus.UNBOUNDED, None, -np.inf)
    if not res.success:
        raise SolverError(f"linprog failed: {res.message}")
    duals = reduced = None
    ineq = getattr(res, "ineqlin", None)
    eq = getattr(res, "eqlin", None)
    if ineq is not None and eq is not None:
        # HiGHS marginals are d(objective)/d(rhs) in minimization
        # orientation (<= 0 for binding <= rows), the same convention the
        # pure engines report.  Reduced costs are recomputed in caller
        # space so bound-row duals fold in identically across engines.
        y_ub = np.asarray(ineq.marginals, dtype=float)
        y_eq = np.asarray(eq.marginals, dtype=float)
        duals = np.concatenate([y_ub, y_eq])
        reduced = c.copy()
        if a_ub is not None and np.size(a_ub):
            reduced -= np.asarray(a_ub, dtype=float).T @ y_ub
        if a_eq is not None and np.size(a_eq):
            reduced -= np.asarray(a_eq, dtype=float).T @ y_eq
    return LPResult(SolveStatus.OPTIMAL, np.asarray(res.x), float(res.fun),
                    iterations=int(getattr(res, "nit", 0)),
                    duals=duals, reduced_costs=reduced)


class ScipyMILPSolver:
    """Full-MILP backend using ``scipy.optimize.milp`` (HiGHS branch & cut).

    Mirrors :class:`~repro.solver.branch_bound.BranchBoundSolver.solve`'s
    interface so the scheduler can swap backends freely.

    Parameters
    ----------
    rel_gap:
        Relative MIP gap at which HiGHS may stop (paper uses 10 % with a
        time budget; we default to exact).
    time_limit:
        Wall-clock limit in seconds, or ``None``.
    use_sparse:
        Feed HiGHS ``scipy.sparse`` constraint matrices built from the
        model's CSR export (the default); ``False`` keeps the dense
        ``to_standard_arrays`` path as a cross-check oracle.
    """

    def __init__(self, rel_gap: float = 1e-6,
                 time_limit: float | None = None,
                 use_sparse: bool = True) -> None:
        if not HAVE_SCIPY:
            raise SolverError("scipy is not installed")
        self.rel_gap = rel_gap
        self.time_limit = time_limit
        self.use_sparse = use_sparse

    def solve(self, model: Model,
              options: SolveOptions | None = None) -> MILPResult:
        # scipy.optimize.milp has no warm-start hook; a warm start in the
        # options is accepted for interface compatibility and ignored.
        rel_gap = options.get("rel_gap", self.rel_gap) \
            if options is not None else self.rel_gap
        time_limit = options.get("time_limit", self.time_limit) \
            if options is not None else self.time_limit
        if self.use_sparse:
            sa = model.to_sparse_arrays()
            a_ub, a_eq = sa.a_ub.to_scipy(), sa.a_eq.to_scipy()
        else:
            sa = model.to_standard_arrays()
            a_ub, a_eq = sa.a_ub, sa.a_eq
        t0 = time.monotonic()
        constraints = []
        if sa.b_ub.size:
            constraints.append(_sciopt.LinearConstraint(
                a_ub, -np.inf, sa.b_ub))
        if sa.b_eq.size:
            constraints.append(_sciopt.LinearConstraint(
                a_eq, sa.b_eq, sa.b_eq))
        milp_options = {"mip_rel_gap": rel_gap, "presolve": True}
        if time_limit is not None:
            milp_options["time_limit"] = time_limit
        res = _sciopt.milp(
            c=sa.c,
            constraints=constraints or None,
            integrality=sa.integrality.astype(int),
            bounds=_sciopt.Bounds(sa.lb, sa.ub),
            options=milp_options)
        solve_time = time.monotonic() - t0
        if res.status == 2:
            return MILPResult(SolveStatus.INFEASIBLE, None, math.nan,
                              solve_time=solve_time)
        if res.status == 3:
            return MILPResult(SolveStatus.UNBOUNDED, None,
                              -sa.obj_sign * math.inf, solve_time=solve_time)
        if res.x is None:
            return MILPResult(SolveStatus.NO_SOLUTION, None, math.nan,
                              solve_time=solve_time)
        x = np.asarray(res.x, dtype=float)
        x[sa.integrality] = np.round(x[sa.integrality])
        obj = sa.obj_sign * float(sa.c @ x) + sa.obj_constant
        gap = float(getattr(res, "mip_gap", 0.0) or 0.0)
        status = SolveStatus.OPTIMAL if res.status == 0 else SolveStatus.FEASIBLE
        nodes = int(getattr(res, "mip_node_count", 0) or 0)
        obs.emit("solver.solve", status=status.value, objective=obj, gap=gap,
                 nodes=nodes, time_ms=1000.0 * solve_time)
        return MILPResult(status=status, x=x, objective=obj,
                          bound=obj, gap=gap, nodes=nodes,
                          solve_time=solve_time)
