"""Independent-component decomposition of MILP models.

A scheduling-cycle MILP is block-separable whenever two groups of jobs share
no ``(partition, time-slice)`` supply constraint: the constraint matrix is
block-diagonal up to row/column permutation, so the monolithic optimum is
exactly the union of the per-block optima.  Branch and bound is
super-linear in problem size, so solving ``k`` blocks of size ``n/k`` is
far cheaper than one block of size ``n`` — the structure-exploitation
argument CvxCluster makes for consensus problems (100-1000x) applies
directly here.

:func:`decompose` finds the blocks with a union-find sweep over constraint
nonzeros (``O(nnz * alpha)``), builds one independent sub-:class:`Model`
per block, and handles variables that appear in *no* constraint (e.g. a
preemption decision whose victim frees no contested node) analytically
from their bounds.  :func:`solve_decomposed` solves every component
through any :class:`~repro.solver.backend.MILPBackend`, slices a full-model
warm start down to each component, and recombines solutions, objective,
bound and search statistics into a single :class:`MILPResult` whose ``x``
is indistinguishable from a monolithic solve.

Decomposition is *schedule-preserving by construction*: with exact solves
the recombined objective equals the monolithic optimum; with a relative
gap each component is within the gap, so the union is too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SolverError
from repro.solver.expr import LinExpr
from repro.solver.model import MAXIMIZE, Model
from repro.solver.options import UNSET, SolveOptions
from repro.solver.result import MILPResult, SolveStatus


@dataclass
class SubProblem:
    """One independent block: a standalone model plus its column mapping."""

    model: Model
    #: Global (source-model) variable index of each local column, sorted.
    global_indices: np.ndarray

    @property
    def num_variables(self) -> int:
        return int(self.global_indices.shape[0])


@dataclass
class Decomposition:
    """A model split into independent blocks plus analytic leftovers."""

    source: Model
    components: list[SubProblem]
    #: Variables appearing in no constraint, fixed at their best bound.
    free_indices: np.ndarray
    free_values: np.ndarray
    #: Objective contribution of the free variables (model sense).
    free_objective: float
    #: The source objective's constant term.
    constant: float

    @property
    def num_components(self) -> int:
        return len(self.components)

    def component_sizes(self) -> list[int]:
        return [c.num_variables for c in self.components]

    def assemble(self, solutions: list[np.ndarray]) -> np.ndarray:
        """Scatter per-component solutions back into source column order."""
        x = np.zeros(self.source.num_variables)
        for comp, xs in zip(self.components, solutions):
            x[comp.global_indices] = xs
        if self.free_indices.size:
            x[self.free_indices] = self.free_values
        return x

    def slice_warm_start(self, x_full: np.ndarray | None,
                         comp: SubProblem) -> np.ndarray | None:
        """Restrict a full-model feasible point to one component's columns.

        Constraints are component-local, so the restriction of a feasible
        point is feasible for the sub-model; this is how the previous
        cycle's shifted plan seeds each block's incumbent.
        """
        if x_full is None:
            return None
        return np.asarray(x_full, dtype=float)[comp.global_indices]


class _UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def _free_value(var, coef: float, sense: str) -> float:
    """Optimal value of an unconstrained variable, from its bounds."""
    wants_high = coef > 0 if sense == MAXIMIZE else coef < 0
    if coef == 0.0:
        if var.lb is not None:
            pick = var.lb
        elif var.ub is not None:
            pick = min(0.0, var.ub)
        else:
            pick = 0.0
    elif wants_high:
        if var.ub is None:
            raise SolverError(
                f"unconstrained variable {var.name!r} is unbounded in the "
                f"objective direction")
        pick = var.ub
    else:
        if var.lb is None:
            raise SolverError(
                f"unconstrained variable {var.name!r} is unbounded in the "
                f"objective direction")
        pick = var.lb
    if var.is_integral:
        pick = float(round(pick))
    return float(pick)


def decompose(model: Model) -> Decomposition:
    """Split ``model`` into independent connected components.

    Two variables are connected when some constraint mentions both; the
    components of that graph are exactly the blocks of the (permuted)
    block-diagonal constraint matrix.  Every constraint lands in exactly
    one component (all its variables share a root by construction).
    """
    n = model.num_variables
    uf = _UnionFind(n)
    in_constraint = np.zeros(n, dtype=bool)
    for con in model.constraints:
        idxs = list(con.expr.coeffs.keys())
        for i in idxs:
            in_constraint[i] = True
        first = idxs[0] if idxs else None
        for i in idxs[1:]:
            uf.union(first, i)

    # Group constrained variables by root, preserving column order.
    groups: dict[int, list[int]] = {}
    for i in range(n):
        if in_constraint[i]:
            groups.setdefault(uf.find(i), []).append(i)

    sense = model.objective_sense
    components: list[SubProblem] = []
    local_of: dict[int, tuple[int, int]] = {}  # global -> (comp, local)
    for k, (root, idxs) in enumerate(sorted(groups.items())):
        sub = Model(f"{model.name}#c{k}")
        for local, gi in enumerate(idxs):
            v = model.variables[gi]
            sub._add_var(v.name, v.lb, v.ub, v.domain)
            local_of[gi] = (k, local)
        obj = LinExpr({local_of[gi][1]: model.objective.coeffs[gi]
                       for gi in idxs if gi in model.objective.coeffs})
        sub.set_objective(obj, sense=sense)
        components.append(SubProblem(model=sub,
                                     global_indices=np.asarray(idxs,
                                                               dtype=np.int64)))

    for con in model.constraints:
        idxs = con.expr.coeffs
        if not idxs:
            continue  # constant constraints were validated at add time
        k, _ = local_of[next(iter(idxs))]
        sub = components[k].model
        expr = LinExpr({local_of[gi][1]: coef for gi, coef in idxs.items()})
        sub.add_constraint(expr, con.sense, con.rhs, name=con.name)

    free = np.nonzero(~in_constraint)[0]
    free_values = np.zeros(free.shape[0])
    free_objective = 0.0
    for pos, gi in enumerate(free):
        coef = model.objective.coeffs.get(int(gi), 0.0)
        free_values[pos] = _free_value(model.variables[gi], coef, sense)
        free_objective += coef * free_values[pos]

    return Decomposition(source=model, components=components,
                         free_indices=free.astype(np.int64),
                         free_values=free_values,
                         free_objective=free_objective,
                         constant=model.objective.constant)


def _gather_results(decomps: list[Decomposition], backend,
                    opts_list: list[SolveOptions],
                    dispatch_seed: int | None = None
                    ) -> tuple[list[list[MILPResult | None]],
                               list[dict[str, int]]]:
    """One :class:`MILPResult` per component, per decomposition.

    The three supply paths, applied per component in this order:

    1. **cache exact hit** — an identical numeric model was solved before;
       replay its stored result (bit-equal, zero solver cost);
    2. **worker pool** — remaining components (across *every*
       decomposition — the sharded cycle's domain models all land in one
       dispatch) ship to the persistent process pool when
       ``opts.workers >= 2`` (falling back to in-process solving on any
       pool failure);
    3. **in-process solve** — the sequential path; once a component comes
       back infeasible/unbounded, the remaining components of *that*
       decomposition are skipped (their entries stay ``None``; the
       recombination loop never reads past the failure) while other
       decompositions keep solving.

    Each solved component gets a wall-clock budget carved from the cycle
    budget (``opts.time_limit``, else the backend's configured limit) in
    proportion to its size, and a warm start chosen as the better feasible
    seed of the sliced cycle warm start (the scheduler's time-shifted
    previous plan, Sec. 3.2.2) and a cache near-miss solution.

    ``dispatch_seed`` (the scheduler's single RNG seed) deterministically
    shuffles the dispatch order so big and small components interleave
    across pool workers; results scatter back by index, so the solution is
    bit-identical for every seed — only the wall-clock balance moves.
    """
    from repro.solver.backend import backend_time_limit
    from repro.solver.parallel import (best_warm_start, carve_time_budgets,
                                       get_pool)

    shared = opts_list[0]
    cache = shared.get("component_cache")
    workers = shared.get("workers", 0) or 0

    results: list[list[MILPResult | None]] = [
        [None] * d.num_components for d in decomps]
    cache_stats: list[dict[str, int]] = [
        {"cache_hits": 0, "cache_warm_hits": 0, "cache_evictions": 0}
        for _ in decomps]
    evictions_before = cache.stats.evictions if cache is not None else 0
    #: (decomp idx, component idx, model, warm start), in natural order.
    pending: list[tuple[int, int, Model, np.ndarray | None]] = []
    fingerprints: dict[tuple[int, int], object] = {}
    for di, (decomp, opts) in enumerate(zip(decomps, opts_list)):
        warm_full = opts.get("warm_start")
        for i, comp in enumerate(decomp.components):
            ws = decomp.slice_warm_start(warm_full, comp)
            if cache is not None:
                hit = cache.lookup(comp.model)
                fingerprints[(di, i)] = hit.fingerprint
                if hit.result is not None:
                    results[di][i] = hit.result
                    cache_stats[di]["cache_hits"] += 1
                    continue
                if hit.warm_start is not None:
                    cache_stats[di]["cache_warm_hits"] += 1
                    ws = best_warm_start(comp.model, ws, hit.warm_start)
            pending.append((di, i, comp.model, ws))

    total_budget = shared.get("time_limit", UNSET)
    if total_budget is UNSET:
        total_budget = backend_time_limit(backend)
    budgets = carve_time_budgets(
        total_budget, [model.num_variables for _, _, model, _ in pending])

    def call_options(ws: np.ndarray | None,
                     budget: float | None) -> SolveOptions:
        if budget is None:
            return SolveOptions(warm_start=ws)
        return SolveOptions(warm_start=ws, time_limit=budget)

    order = list(range(len(pending)))
    if dispatch_seed is not None and len(order) > 1:
        import random
        random.Random(dispatch_seed).shuffle(order)

    solved: dict[int, MILPResult] | None = None
    if workers >= 2 and len(pending) > 1:
        with obs.span("parallel_dispatch"):
            solved = get_pool(workers).solve_many(
                backend,
                [(pos, pending[pos][2], call_options(pending[pos][3],
                                                     budgets[pos]))
                 for pos in order])
    if solved is not None:
        for pos, res in solved.items():
            di, i, _, _ = pending[pos]
            results[di][i] = res
    else:  # sequential (or pool fallback): skip a doomed decomposition
        doomed: set[int] = set()
        for pos in order:
            di, i, model, ws = pending[pos]
            if di in doomed:
                continue
            res = backend.solve(model, options=call_options(ws,
                                                            budgets[pos]))
            results[di][i] = res
            if not res.status.has_solution:
                doomed.add(di)

    if cache is not None:
        # Memoize only freshly-solved components (never re-store replays).
        for di, i, _, _ in pending:
            if results[di][i] is not None:
                cache.store(decomps[di].components[i].model, results[di][i],
                            fingerprint=fingerprints.get((di, i)))
        # LRU pressure during *this* solve (the cache outlives cycles, so
        # the cumulative counter alone cannot be attributed to a cycle).
        # Attributed to the first decomposition's stats; cycle telemetry
        # sums across decompositions, so the total stays right.
        cache_stats[0]["cache_evictions"] = (cache.stats.evictions
                                             - evictions_before)
    return results, cache_stats


def _recombine(decomp: Decomposition,
               results: list[MILPResult | None],
               cache_stats: dict[str, int]) -> MILPResult:
    """Fold per-component results back into one :class:`MILPResult`.

    Regardless of how a component's result was produced — fresh solve,
    pool worker, or cache replay — recombination walks components in their
    deterministic (column-order) sequence, so the assembled ``x`` and
    objective are identical to a sequential in-process solve.

    The recombined :class:`MILPResult` carries the summed objective/bound,
    the max component gap, summed node/iteration counts, and
    ``stats["components"]``; its ``x`` lives in source-model column order,
    so callers decode it exactly as they would a monolithic solution.
    """
    objective = decomp.constant + decomp.free_objective
    bound = objective
    gap = 0.0
    nodes = 0
    # Per-component LP-engine work, summed into the recombined stats so
    # cycle telemetry sees decomposed solves exactly like monolithic ones.
    lp_work = {key: 0 for key in ("lp_iterations", "lp_dual_pivots",
                                  "lp_refactorizations", "lp_warm_restarts",
                                  "lp_warm_hits", "lp_cold_fallbacks",
                                  "lp_factorizations", "lp_ft_updates",
                                  "lp_pricing_candidates",
                                  "colgen_rounds", "colgen_columns_priced",
                                  "repair_escalations")}
    #: Worst factor fill ratio across components (max, not sum).
    lp_fill_ratio = 0.0
    #: Worst audited repair gap across components (max, not sum).
    repair_gap = 0.0
    solve_time = 0.0
    proven = True
    solutions: list[np.ndarray] = []
    for res in results:
        if res is None:  # sequential early exit hit a doomed block earlier
            continue
        nodes += res.nodes
        solve_time += res.solve_time
        for key in lp_work:
            lp_work[key] += int(res.stats.get(key, 0))
        lp_fill_ratio = max(lp_fill_ratio,
                            float(res.stats.get("lp_fill_ratio", 0.0)))
        repair_gap = max(repair_gap, float(res.stats.get("repair_gap", 0.0)))
        if res.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
            # An infeasible/unbounded block makes the whole model so.
            return MILPResult(res.status, None,
                              math.nan if res.status == SolveStatus.INFEASIBLE
                              else res.objective,
                              nodes=nodes, solve_time=solve_time,
                              stats={"components": decomp.num_components,
                                     **lp_work, **cache_stats})
        if not res.status.has_solution:
            return MILPResult(SolveStatus.NO_SOLUTION, None, math.nan,
                              nodes=nodes, solve_time=solve_time,
                              stats={"components": decomp.num_components,
                                     **lp_work, **cache_stats})
        solutions.append(res.x)
        objective += res.objective
        bound += res.bound if not math.isnan(res.bound) else res.objective
        if not math.isnan(res.gap):
            gap = max(gap, res.gap)
        proven = proven and res.status == SolveStatus.OPTIMAL

    x = decomp.assemble(solutions)
    obs.count("solver.decompose.components", decomp.num_components)
    obs.emit("solver.decomposed_solve",
             components=decomp.num_components,
             sizes=decomp.component_sizes(),
             objective=objective, nodes=nodes,
             time_ms=1000.0 * solve_time)
    stats = {"components": decomp.num_components,
             "component_sizes": decomp.component_sizes(),
             **lp_work, **cache_stats}
    if lp_fill_ratio:
        stats["lp_fill_ratio"] = lp_fill_ratio
    if repair_gap:
        stats["repair_gap"] = repair_gap
    return MILPResult(
        status=SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE,
        x=x, objective=objective, bound=bound, gap=gap, nodes=nodes,
        solve_time=solve_time, stats=stats)


def solve_many_decomposed(decomps: list[Decomposition], backend,
                          options: SolveOptions | list[SolveOptions] | None
                          = None,
                          dispatch_seed: int | None = None
                          ) -> list[MILPResult]:
    """Solve several decompositions as one pooled batch, recombining each.

    This is the sharded cycle's solve primitive: every domain MILP is
    decomposed independently, but all their pending components flatten
    into a *single* worker-pool dispatch, so a cluster of small domains
    saturates the pool instead of paying one dispatch round-trip per
    domain.  ``options`` is either one :class:`SolveOptions` shared by all
    decompositions or a per-decomposition list (warm starts differ per
    domain; ``workers`` / ``component_cache`` / ``time_limit`` are read
    from the first entry and govern the whole batch).

    Returns one recombined :class:`MILPResult` per decomposition, in input
    order.  With a single decomposition this is exactly
    :func:`solve_decomposed` — same cache traffic, same budgets, same
    assembled ``x``.
    """
    if not decomps:
        return []
    if options is None:
        opts_list = [SolveOptions() for _ in decomps]
    elif isinstance(options, SolveOptions):
        opts_list = [options] * len(decomps)
    else:
        if len(options) != len(decomps):
            raise SolverError(
                f"solve_many_decomposed: {len(decomps)} decompositions but "
                f"{len(options)} option sets")
        opts_list = list(options)
    all_results, all_cache_stats = _gather_results(
        decomps, backend, opts_list, dispatch_seed=dispatch_seed)
    return [_recombine(decomp, results, cache_stats)
            for decomp, results, cache_stats
            in zip(decomps, all_results, all_cache_stats)]


def solve_decomposed(decomp: Decomposition, backend,
                     options: SolveOptions | None = None) -> MILPResult:
    """Solve every component through ``backend`` and recombine.

    ``options`` governs the whole decomposed solve: ``warm_start`` is the
    full-model seed (sliced per component), ``workers`` enables the
    persistent process pool, ``component_cache`` the cross-cycle
    memoization, and ``time_limit`` the cycle budget carved across
    components (see :mod:`repro.solver.parallel`).  A thin wrapper over
    :func:`solve_many_decomposed` with a one-element batch — the two are
    bit-equal by construction.
    """
    return solve_many_decomposed([decomp], backend, options)[0]
