"""make_backend: name registry behavior."""

import pytest

from repro.errors import SolverError
from repro.solver.backend import BACKEND_NAMES, make_backend
from repro.solver.scipy_backend import scipy_available


def test_unknown_backend_raises_with_valid_names():
    with pytest.raises(SolverError) as exc:
        make_backend("cplex")
    msg = str(exc.value)
    assert "cplex" in msg
    for name in BACKEND_NAMES:
        assert name in msg, f"error should list valid backend {name!r}"


@pytest.mark.parametrize("bad", ["", "Pure", "scipy-lp", "gurobi"])
def test_other_unknown_names_rejected(bad):
    with pytest.raises(SolverError):
        make_backend(bad)


def test_known_names_construct_solvers():
    for name in BACKEND_NAMES:
        if name in ("scipy", "pure-scipy-lp") and not scipy_available():
            continue
        backend = make_backend(name)
        assert hasattr(backend, "solve")


def test_auto_resolves_to_a_backend():
    backend = make_backend("auto")
    assert hasattr(backend, "solve")
