"""Shared mutable state threaded through one scheduling cycle's stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only, avoids import cycle
    from repro.core.compiler import CompiledBatch, ResizeCandidate
    from repro.core.delta import CycleDelta
    from repro.core.scheduler import (CycleResult, JobRequest, SolveTelemetry,
                                      TetriSched, TetriSchedConfig)
    from repro.shard.coordinator import ShardCycle
    from repro.solver.decompose import Decomposition
    from repro.solver.result import MILPResult
    from repro.strl.ast import StrlNode


@dataclass
class CycleContext:
    """Everything one cycle's stages read and write.

    Earlier stages populate the fields later stages consume; the driver
    owns ``stage_timings``.  The context never outlives the cycle.
    """

    scheduler: "TetriSched"
    now: float
    result: "CycleResult"
    telemetry: "SolveTelemetry"

    #: (job_id, STRL root) per schedulable pending job — plus, with
    #: ``elastic_mode``, one resize fragment per running elastic job.
    exprs: list[tuple[str, "StrlNode"]] = field(default_factory=list)
    requests: dict[str, "JobRequest"] = field(default_factory=dict)
    #: Running elastic jobs re-entered as width re-planning candidates
    #: (``elastic_mode``); their fragments sit at the tail of ``exprs``.
    resizable: list["ResizeCandidate"] = field(default_factory=list)
    #: Extract's grow/shrink split of this cycle's applied resizes.
    resize_grown: int = 0
    resize_shrunk: int = 0
    compiled: "CompiledBatch | None" = None
    #: What the delta compiler recompiled vs replayed (``delta_mode != off``).
    delta: "CycleDelta | None" = None
    warm_start: np.ndarray | None = None
    decomposition: "Decomposition | None" = None
    solution: "MILPResult | None" = None
    #: Sharded-cycle working set (``shard_mode != off``), owned by the
    #: :mod:`repro.shard` stages: per-domain batches, solves, boundary
    #: jobs, and the reconciliation coupling model.
    shard: "ShardCycle | None" = None

    #: Independent MILP blocks this cycle solved (1 when monolithic).
    components: int = 0
    #: Stored nonzeros in the cycle MILP's sparse export.
    nnz: int = 0
    #: Wall-clock seconds per stage name, filled by the driver.
    stage_timings: dict[str, float] = field(default_factory=dict)
    halted: bool = False

    @property
    def config(self) -> "TetriSchedConfig":
        return self.scheduler.config

    def halt(self) -> None:
        """Skip all remaining stages of this cycle."""
        self.halted = True
