"""Failure-injection tests: the system degrades gracefully, never corrupts.

Scenarios: a solver backend that finds nothing, a backend that crashes,
preemption bookkeeping inconsistencies, and trace-invariant violations.
"""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.errors import SimulationError, SolverError
from repro.sim import EventKind, EventQueue, ExecutionTrace
from repro.sim.trace import COMPLETION, LAUNCH
from repro.solver import BranchBoundOptions, BranchBoundSolver, Model
from repro.solver.result import MILPResult, SolveStatus
from repro.strl import SpaceOption
from repro.valuefn import StepValue


class _NoSolutionBackend:
    """A backend that always gives up (e.g., a zero time budget)."""

    def solve(self, model, options=None):
        return MILPResult(SolveStatus.NO_SOLUTION, None, math.nan)


class _CrashingBackend:
    def solve(self, model, options=None):
        raise SolverError("boom")


def make_sched(backend=None):
    cluster = Cluster.build(racks=1, nodes_per_rack=4)
    sched = TetriSched(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=40))
    if backend is not None:
        sched._backend = backend
    request = JobRequest(
        "j", (SpaceOption(cluster.node_names, 2, 20.0),),
        StepValue(1000.0, 200.0), PriorityClass.SLO_ACCEPTED, 0.0,
        deadline=200.0)
    sched.submit(request)
    return sched


class TestSolverFailures:
    def test_no_solution_schedules_nothing_keeps_queue(self):
        sched = make_sched(_NoSolutionBackend())
        result = sched.run_cycle(0.0)
        assert result.allocations == []
        assert sched.pending_count == 1  # job not lost

    def test_crashing_backend_propagates_cleanly(self):
        sched = make_sched(_CrashingBackend())
        with pytest.raises(SolverError):
            sched.run_cycle(0.0)
        # State untouched: nothing launched, queue intact.
        assert sched.pending_count == 1
        assert not sched.state.running_jobs

    def test_zero_time_budget_pure_solver(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(10)]
        m.add_constraint(sum(xs), "<=", 5)
        m.set_objective(sum(xs), sense="maximize")
        res = BranchBoundSolver(BranchBoundOptions(
            time_limit=0.0, presolve=False)).solve(m)
        assert res.status in (SolveStatus.NO_SOLUTION, SolveStatus.FEASIBLE,
                              SolveStatus.OPTIMAL)
        # A NO_SOLUTION result never carries a point.
        if res.status == SolveStatus.NO_SOLUTION:
            assert res.x is None


class TestBookkeepingFailures:
    def test_trace_double_booking_detected(self):
        tr = ExecutionTrace()
        tr.record(0.0, LAUNCH, "a", nodes=("n1",))
        tr.record(5.0, LAUNCH, "b", nodes=("n1",))
        tr.record(10.0, COMPLETION, "a")
        tr.record(12.0, COMPLETION, "b")
        with pytest.raises(SimulationError):
            tr.check_no_double_booking()

    def test_trace_clean_run_passes(self):
        tr = ExecutionTrace()
        tr.record(0.0, LAUNCH, "a", nodes=("n1",))
        tr.record(10.0, COMPLETION, "a")
        tr.record(10.0, LAUNCH, "b", nodes=("n1",))
        tr.record(20.0, COMPLETION, "b")
        tr.check_no_double_booking()  # back-to-back is fine

    def test_event_queue_rejects_time_travel(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(-0.1, EventKind.JOB_ARRIVAL)


class TestLpExport:
    def test_lp_string_structure(self):
        m = Model("demo")
        x = m.add_integer("x", ub=5)
        b = m.add_binary("flag")
        m.add_constraint(x + 2 * b, "<=", 6, name="cap")
        m.set_objective(x + b, sense="maximize")
        text = m.to_lp_string()
        assert text.startswith("\\ Model: demo")
        assert "Maximize" in text
        assert "cap:" in text
        assert "Generals" in text and "Binaries" in text
        assert text.rstrip().endswith("End")

    def test_lp_string_sanitizes_names(self):
        m = Model()
        v = m.add_continuous("P[nCk#1,p0]")
        m.add_constraint(v, "<=", 1)
        text = m.to_lp_string()
        assert "P_nCk_1_p0_" in text
        assert "[" not in text.split("\n", 1)[1]
