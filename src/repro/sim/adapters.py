"""Adapter exposing the TetriSched core through the simulator interface.

Performs the role of the paper's STRL Generator inputs (Sec. 3.1): combines
reservation information (accepted / rejected, deadline) with the job type's
placement options and the Fig. 5 value functions to build
:class:`~repro.core.scheduler.JobRequest` objects.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.queues import PriorityClass
from repro.core.scheduler import JobRequest, TetriSched, TetriSchedConfig
from repro.sim.interface import ClusterScheduler, CycleDecisions
from repro.sim.jobs import Job
from repro.valuefn import (SLO_ACCEPTED_MULTIPLIER,
                           SLO_NO_RESERVATION_MULTIPLIER, GraceStepValue,
                           best_effort_value)


class TetriSchedAdapter:
    """Rayon/TetriSched stack as a simulator-drivable scheduler."""

    def __init__(self, cluster: Cluster,
                 config: TetriSchedConfig | None = None,
                 name: str = "TetriSched") -> None:
        self.name = name
        self.cluster = cluster
        self.scheduler = TetriSched(cluster, config)
        self.cycle_s = self.scheduler.config.cycle_s
        self._running: set[str] = set()

    # -- ClusterScheduler interface -----------------------------------------
    def submit(self, job: Job, accepted: bool, now: float) -> None:
        if job.is_slo:
            # A one-quantum grace window (at discounted value) compensates
            # for ceil-rounded durations and cycle misalignment; on-time
            # placements always dominate, and SLO attainment is still
            # measured against the true deadline by the simulator.
            cfg = self.scheduler.config
            grace = cfg.deadline_grace_quanta * cfg.quantum_s
            mult = (SLO_ACCEPTED_MULTIPLIER if accepted
                    else SLO_NO_RESERVATION_MULTIPLIER)
            value_fn = GraceStepValue(mult, job.deadline, grace)
            deadline = job.deadline + grace
            priority = (PriorityClass.SLO_ACCEPTED if accepted
                        else PriorityClass.SLO_NO_RESERVATION)
        else:
            value_fn = best_effort_value(release_time=job.submit_time)
            priority = PriorityClass.BEST_EFFORT
            deadline = None
        request = JobRequest(
            job_id=job.job_id,
            options=tuple(job.estimated_options(self.cluster)),
            value_fn=value_fn, priority=priority,
            submit_time=job.submit_time, deadline=deadline)
        self.scheduler.submit(request)

    def cycle(self, now: float) -> CycleDecisions:
        result = self.scheduler.run_cycle(now)
        self._running.update(a.job_id for a in result.allocations)
        self._running.difference_update(result.preempted)
        return CycleDecisions(allocations=result.allocations,
                              culled=result.culled,
                              preempted=result.preempted, stats=result.stats)

    def job_finished(self, job_id: str, now: float) -> None:
        self.scheduler.on_job_finished(job_id, now)
        self._running.discard(job_id)

    @property
    def active_jobs(self) -> int:
        return self.scheduler.pending_count + len(self._running)

    @property
    def cycle_history(self):
        """Per-cycle stats (Fig. 12 scalability data)."""
        return self.scheduler.cycle_history
