"""Cross-cycle delta compilation of the scheduling MILP.

TetriSched re-plans everything every cycle (Sec. 3.2) — but between
4-second cycles most pending jobs are *unchanged*: their STRL expressions
regenerate identically (deadline-insensitive value functions are
shift-invariant over the plan-ahead window) and the cycle partitioning is
stable while the set of referenced equivalence sets is.  The
:class:`DeltaCompiler` exploits that: it keeps each job's compiled
:class:`~repro.core.compiler.JobFragment` across cycles and re-runs
Algorithm 1 only for jobs whose expression actually changed, then hands
the fragment list to the shared :func:`~repro.core.compiler.assemble_batch`
assembler.  Because the from-scratch path
(:meth:`~repro.core.compiler.StrlCompiler.compile`) ends in the *same*
assembler, delta-compiled models are bit-identical to full recompiles by
construction — the only possible divergence is a stale cached fragment,
which is exactly what ``delta_mode=verify`` re-checks every cycle.

Fragment identity extends the component-cache fingerprint machinery
(:func:`repro.solver.parallel.fingerprint_arrays`) one level up the
pipeline: every fragment carries the SHA-256 of its local CSR export, and
the per-cycle :class:`CycleDelta` reports how many fragments (and model
rows/columns) were actually recompiled versus replayed.

Fallback rules (each records a full rebuild with a reason):

* first cycle — nothing cached yet;
* the batch's equivalence-set family changed — partition ids, capacities
  and per-leaf variable bounds all derive from the partitioning, so every
  fragment is invalidated at once;
* the availability provider exposes ``interval_free_count`` (the greedy
  path's :class:`~repro.core.allocation.PlanAccumulator`) — fragment
  bounds would depend on tentative reservations and are never cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.compiler import (CompiledBatch, JobFragment,
                                 PreemptionCandidate, StrlCompiler,
                                 assemble_batch)
from repro.errors import SchedulerError
from repro.solver.model import Model
from repro.strl.ast import StrlNode

#: Valid values of ``TetriSchedConfig.delta_mode``.
DELTA_MODES = ("off", "on", "verify")


class DeltaDivergence(SchedulerError):
    """A delta-compiled model differs from the from-scratch rebuild.

    Raised by ``delta_mode=verify`` (and the fuzz harness).  Always a bug
    in the fragment cache or the assembler — never expected in operation.
    """


@dataclass(frozen=True)
class CycleDelta:
    """What changed between the previous compiled cycle and this one."""

    #: Jobs compiled for the first time (no cached fragment).
    added: tuple[str, ...] = ()
    #: Jobs that left the batch since last cycle (fragment dropped).
    removed: tuple[str, ...] = ()
    #: Jobs whose regenerated STRL differed — fragment recompiled.
    dirty: tuple[str, ...] = ()
    #: Jobs whose cached fragment was replayed verbatim.
    clean: tuple[str, ...] = ()
    #: Every fragment was recompiled (first cycle / partitioning change).
    full_rebuild: bool = False
    reason: str = ""
    #: Constraint rows written this cycle: recompiled fragments' rows plus
    #: the per-cycle supply rows (always rebuilt — they carry availability).
    rows_patched: int = 0
    #: Columns written this cycle: recompiled fragments' variables plus
    #: the per-cycle preemption decision variables.
    cols_patched: int = 0

    @property
    def jobs_dirty(self) -> int:
        """Jobs whose fragment was recompiled this cycle."""
        return len(self.dirty) + len(self.added)

    @property
    def jobs_clean(self) -> int:
        return len(self.clean)


@dataclass
class DeltaStats:
    """Cumulative fragment-cache accounting across a compiler's lifetime."""

    cycles: int = 0
    full_rebuilds: int = 0
    fragments_compiled: int = 0
    fragments_reused: int = 0


class DeltaCompiler:
    """Cross-cycle incremental compiler over cached job fragments.

    One instance lives on the scheduler and persists across cycles; it is
    a drop-in replacement for per-cycle ``StrlCompiler(...).compile(...)``
    in the global pipeline.  Not usable with the greedy path's
    :class:`~repro.core.allocation.PlanAccumulator` (see module docstring).
    """

    def __init__(self, state: ClusterState, quantum_s: float,
                 minimal_partitioning: bool = True) -> None:
        self.state = state
        self.quantum_s = quantum_s
        self.minimal_partitioning = minimal_partitioning
        self.stats = DeltaStats()
        self._fragments: dict[str, JobFragment] = {}
        self._signature: frozenset[frozenset[str]] | None = None
        self._partitioning = None

    def invalidate(self) -> None:
        """Drop every cached fragment (next cycle is a full rebuild)."""
        self._fragments.clear()
        self._signature = None
        self._partitioning = None

    def compile_cycle(self, batch: list[tuple[str, StrlNode]],
                      preemptible: list[PreemptionCandidate] | None = None,
                      now: float = 0.0, verify: bool = False,
                      resizable: "list | None" = None
                      ) -> tuple[CompiledBatch, CycleDelta]:
        """Compile a cycle batch, reusing cached fragments for clean jobs.

        Returns the :class:`~repro.core.compiler.CompiledBatch` plus the
        :class:`CycleDelta` describing what was actually recompiled.  With
        ``verify=True`` a from-scratch recompile runs alongside and the
        two models are asserted bit-equal (:func:`assert_models_equal`),
        as is the assembled CSR export against the canonical exporter.
        """
        if not batch:
            raise SchedulerError("cannot compile an empty batch")
        seen: set[str] = set()
        for job_id, _ in batch:
            if job_id in seen:
                raise SchedulerError(f"duplicate job id {job_id!r} in batch")
            seen.add(job_id)

        compiler = StrlCompiler(self.state, self.quantum_s, now,
                                self.minimal_partitioning)
        if getattr(self.state, "interval_free_count", None) is not None:
            # Tentative-reservation-aware availability (greedy accumulator):
            # fragment bounds would go stale silently.  Never cache.
            self.invalidate()
            compiled = compiler.compile(batch, preemptible=preemptible,
                                        resizable=resizable)
            return compiled, CycleDelta(
                added=tuple(job_id for job_id, _ in batch),
                full_rebuild=True, reason="interval-capped availability",
                rows_patched=compiled.model.num_constraints,
                cols_patched=compiled.model.num_variables)

        signature = frozenset(leaf.nodes for _, expr in batch
                              for leaf in expr.leaves())
        full_rebuild = False
        reason = ""
        if self._partitioning is None:
            full_rebuild, reason = True, "first cycle"
        elif signature != self._signature:
            full_rebuild, reason = True, "partitioning changed"
        if full_rebuild:
            self._fragments.clear()
            self._partitioning = compiler.build_partitioning(
                [expr for _, expr in batch])
            self._signature = signature
            self.stats.full_rebuilds += 1

        batch_ids = {job_id for job_id, _ in batch}
        removed = tuple(sorted(j for j in self._fragments
                               if j not in batch_ids))
        for job_id in removed:
            del self._fragments[job_id]

        added: list[str] = []
        dirty: list[str] = []
        clean: list[str] = []
        fragments: list[JobFragment] = []
        for job_id, expr in batch:
            cached = self._fragments.get(job_id)
            if cached is not None and cached.expr == expr:
                clean.append(job_id)
                self.stats.fragments_reused += 1
                fragments.append(cached)
                continue
            (dirty if cached is not None else added).append(job_id)
            frag = compiler.compile_fragment(job_id, expr,
                                             self._partitioning)
            self._fragments[job_id] = frag
            self.stats.fragments_compiled += 1
            fragments.append(frag)

        horizon = max(frag.horizon for frag in fragments)
        compiled = assemble_batch(
            fragments, self._partitioning, horizon, self.state,
            self.quantum_s, now, preemptible=preemptible,
            resizable=resizable)
        self.stats.cycles += 1

        recompiled = [f for f in fragments
                      if f.job_id not in set(clean)]
        supply_rows = (compiled.model.num_constraints
                       - sum(f.num_constraints for f in fragments))
        delta = CycleDelta(
            added=tuple(added), removed=removed, dirty=tuple(dirty),
            clean=tuple(clean), full_rebuild=full_rebuild, reason=reason,
            rows_patched=(sum(f.num_constraints for f in recompiled)
                          + supply_rows),
            cols_patched=(sum(f.num_variables for f in recompiled)
                          + len(compiled.preemption_vars)))
        if verify:
            self.verify_cycle(batch, compiled, preemptible=preemptible,
                              now=now, resizable=resizable)
        return compiled, delta

    def verify_cycle(self, batch: list[tuple[str, StrlNode]],
                     compiled: CompiledBatch,
                     preemptible: list[PreemptionCandidate] | None = None,
                     now: float = 0.0,
                     resizable: "list | None" = None) -> None:
        """Assert the delta-compiled model equals a from-scratch rebuild.

        Also re-derives the delta model's CSR export through the canonical
        exporter (bypassing the installed fast-assembled cache) and asserts
        bit-equality, so the numpy offset-and-concatenate assembly path is
        itself verified every cycle it runs.
        """
        reference = StrlCompiler(
            self.state, self.quantum_s, now,
            self.minimal_partitioning).compile(batch,
                                               preemptible=preemptible,
                                               resizable=resizable)
        assert_models_equal(compiled.model, reference.model)
        assert_installed_export(compiled.model)


def merge_cycle_deltas(deltas: "list[CycleDelta]") -> CycleDelta:
    """Fold per-domain :class:`CycleDelta` records into one cycle record.

    Job sets are concatenated (domains are job-disjoint, so no
    double-counting); ``full_rebuild`` is true when *any* domain rebuilt
    (with the reasons joined) — the cycle-stats flag answers "did this
    cycle pay a rebuild anywhere", not "everywhere".
    """
    if not deltas:
        return CycleDelta()
    reasons = sorted({d.reason for d in deltas if d.reason})
    return CycleDelta(
        added=tuple(j for d in deltas for j in d.added),
        removed=tuple(j for d in deltas for j in d.removed),
        dirty=tuple(j for d in deltas for j in d.dirty),
        clean=tuple(j for d in deltas for j in d.clean),
        full_rebuild=any(d.full_rebuild for d in deltas),
        reason="; ".join(reasons),
        rows_patched=sum(d.rows_patched for d in deltas),
        cols_patched=sum(d.cols_patched for d in deltas))


class DomainDeltaStores:
    """Per-domain :class:`DeltaCompiler` stores for the sharded pipeline.

    Sharding splits the cycle into per-domain batches; a single fragment
    store would see every domain's partitioning signature interleaved and
    full-rebuild on every compile.  One store per domain keeps each
    domain's signature (and fragments) stable across cycles — the sticky
    job->domain assignment is what makes the stores stay warm.  Stores
    are created lazily on a domain's first non-empty batch (a domain
    emptied by drain simply stops being compiled; its store keeps its
    fragments for when jobs come back).
    """

    def __init__(self, state: ClusterState, quantum_s: float) -> None:
        self.state = state
        self.quantum_s = quantum_s
        self._stores: dict[int, DeltaCompiler] = {}

    def store(self, domain_id: int) -> DeltaCompiler:
        """The (lazily created) fragment store of one domain."""
        compiler = self._stores.get(domain_id)
        if compiler is None:
            compiler = DeltaCompiler(self.state, self.quantum_s)
            self._stores[domain_id] = compiler
        return compiler

    def compile_domain(self, domain_id: int,
                       batch: list[tuple[str, StrlNode]],
                       now: float = 0.0, verify: bool = False
                       ) -> tuple[CompiledBatch, CycleDelta]:
        """Delta-compile one domain's batch through its own store."""
        return self.store(domain_id).compile_cycle(batch, now=now,
                                                   verify=verify)

    def invalidate_all(self) -> None:
        """Drop every domain's cached fragments (next cycles rebuild)."""
        for compiler in self._stores.values():
            compiler.invalidate()

    def aggregate_stats(self) -> DeltaStats:
        """Summed fragment-cache accounting across all domain stores."""
        total = DeltaStats()
        for compiler in self._stores.values():
            total.cycles = max(total.cycles, compiler.stats.cycles)
            total.full_rebuilds += compiler.stats.full_rebuilds
            total.fragments_compiled += compiler.stats.fragments_compiled
            total.fragments_reused += compiler.stats.fragments_reused
        return total


def _fresh_export(model: Model):
    """The canonical CSR export, computed from scratch (cache bypassed)."""
    installed = model._sparse_cache
    model._sparse_cache = None
    try:
        return model.to_sparse_arrays()
    finally:
        model._sparse_cache = installed


def _sparse_fields(sa) -> list[tuple[str, np.ndarray]]:
    out = [("c", sa.c), ("b_ub", sa.b_ub), ("b_eq", sa.b_eq),
           ("lb", sa.lb), ("ub", sa.ub), ("integrality", sa.integrality)]
    for mat_name, mat in (("a_ub", sa.a_ub), ("a_eq", sa.a_eq)):
        out += [(f"{mat_name}.indptr", mat.indptr),
                (f"{mat_name}.indices", mat.indices),
                (f"{mat_name}.data", mat.data)]
    return out


def _compare_exports(label_a: str, sa, label_b: str, sb) -> None:
    if sa.a_ub.shape != sb.a_ub.shape or sa.a_eq.shape != sb.a_eq.shape:
        raise DeltaDivergence(
            f"{label_a} shapes (ub={sa.a_ub.shape}, eq={sa.a_eq.shape}) != "
            f"{label_b} (ub={sb.a_ub.shape}, eq={sb.a_eq.shape})")
    if (sa.obj_constant != sb.obj_constant
            or sa.obj_sign != sb.obj_sign):
        raise DeltaDivergence(
            f"{label_a} objective constant/sign "
            f"({sa.obj_constant}, {sa.obj_sign}) != {label_b} "
            f"({sb.obj_constant}, {sb.obj_sign})")
    for (name, arr_a), (_, arr_b) in zip(_sparse_fields(sa),
                                         _sparse_fields(sb)):
        if not np.array_equal(arr_a, arr_b):
            raise DeltaDivergence(
                f"{label_a}.{name} differs from {label_b}.{name}")


def assert_models_equal(model_a: Model, model_b: Model) -> None:
    """Raise :class:`DeltaDivergence` unless the models are bit-identical.

    "Bit-identical" means: same variables (name, index, bounds, domain, in
    order), same constraints (name, sense, rhs, coefficient dicts *and*
    their insertion order — CSR layout depends on it), same objective, and
    byte-equal canonical sparse exports.
    """
    if model_a.num_variables != model_b.num_variables:
        raise DeltaDivergence(
            f"variable counts differ: {model_a.num_variables} != "
            f"{model_b.num_variables}")
    for va, vb in zip(model_a.variables, model_b.variables):
        if (va.name, va.index, va.lb, va.ub, va.domain) != (
                vb.name, vb.index, vb.lb, vb.ub, vb.domain):
            raise DeltaDivergence(
                f"variable {va.index} differs: "
                f"{va.name!r} ({va.lb}, {va.ub}, {va.domain}) != "
                f"{vb.name!r} ({vb.lb}, {vb.ub}, {vb.domain})")
    if model_a.num_constraints != model_b.num_constraints:
        raise DeltaDivergence(
            f"constraint counts differ: {model_a.num_constraints} != "
            f"{model_b.num_constraints}")
    for ca, cb in zip(model_a.constraints, model_b.constraints):
        if (ca.name != cb.name or ca.sense != cb.sense
                or ca.rhs != cb.rhs
                or ca.expr.coeffs != cb.expr.coeffs
                or list(ca.expr.coeffs) != list(cb.expr.coeffs)
                or ca.expr.constant != cb.expr.constant):
            raise DeltaDivergence(
                f"constraint {ca.name!r} differs from {cb.name!r}")
    obj_a, obj_b = model_a.objective, model_b.objective
    if (model_a.objective_sense != model_b.objective_sense
            or obj_a.coeffs != obj_b.coeffs
            or list(obj_a.coeffs) != list(obj_b.coeffs)
            or obj_a.constant != obj_b.constant):
        raise DeltaDivergence("objectives differ")
    _compare_exports("delta", _fresh_export(model_a),
                     "full", _fresh_export(model_b))


def assert_installed_export(model: Model) -> None:
    """Raise unless the model's cached export matches a fresh recompute.

    Validates the fast fragment-concatenation CSR assembly against the
    canonical per-constraint exporter.  No-op when nothing is cached.
    """
    installed = model._sparse_cache
    if installed is None:
        return
    _compare_exports("installed", installed,
                     "recomputed", _fresh_export(model))


__all__ = [
    "CycleDelta", "DELTA_MODES", "DeltaCompiler", "DeltaDivergence",
    "DeltaStats", "DomainDeltaStores", "assert_installed_export",
    "assert_models_equal", "merge_cycle_deltas",
]
