"""Tests for jobs and placement-dependent runtime models."""

import pytest

from repro.cluster import Cluster
from repro.errors import WorkloadError
from repro.sim import GpuType, Job, MpiType, UnconstrainedType


@pytest.fixture()
def cluster():
    return Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)


class TestJobValidation:
    def test_valid_job(self):
        j = Job("j", UnconstrainedType(), k=2, base_runtime_s=10,
                submit_time=0.0)
        assert not j.is_slo

    def test_bad_k(self):
        with pytest.raises(WorkloadError):
            Job("j", UnconstrainedType(), k=0, base_runtime_s=10,
                submit_time=0.0)

    def test_bad_runtime(self):
        with pytest.raises(WorkloadError):
            Job("j", UnconstrainedType(), k=1, base_runtime_s=0,
                submit_time=0.0)

    def test_bad_estimate_error(self):
        with pytest.raises(WorkloadError):
            Job("j", UnconstrainedType(), k=1, base_runtime_s=10,
                submit_time=0.0, estimate_error=-1.0)

    def test_estimated_runtime(self):
        j = Job("j", UnconstrainedType(), k=1, base_runtime_s=100,
                submit_time=0.0, estimate_error=0.5)
        assert j.estimated_runtime_s == pytest.approx(150.0)
        j2 = Job("j2", UnconstrainedType(), k=1, base_runtime_s=100,
                 submit_time=0.0, estimate_error=-0.5)
        assert j2.estimated_runtime_s == pytest.approx(50.0)

    def test_slo_flag(self):
        j = Job("j", UnconstrainedType(), k=1, base_runtime_s=10,
                submit_time=0.0, deadline=50.0)
        assert j.is_slo


class TestUnconstrained:
    def test_single_option(self, cluster):
        opts = UnconstrainedType().options(cluster, 3, 60.0)
        assert len(opts) == 1
        assert opts[0].nodes == cluster.node_names
        assert opts[0].duration_s == 60.0

    def test_runtime_placement_independent(self, cluster):
        t = UnconstrainedType()
        assert t.true_runtime(cluster, frozenset({"r0n0"}), 60.0, 1) == 60.0
        assert t.true_runtime(cluster, frozenset({"r1n0"}), 60.0, 1) == 60.0


class TestGpu:
    def test_two_options_preferred_first(self, cluster):
        opts = GpuType(slowdown=1.5).options(cluster, 2, 60.0)
        assert opts[0].nodes == cluster.nodes_with_attr("gpu")
        assert opts[0].duration_s == 60.0
        assert opts[1].nodes == cluster.node_names
        assert opts[1].duration_s == pytest.approx(90.0)

    def test_no_gpu_option_when_gang_too_big(self, cluster):
        opts = GpuType().options(cluster, 5, 60.0)  # only 4 GPU nodes
        assert len(opts) == 1
        assert opts[0].nodes == cluster.node_names

    def test_true_runtime(self, cluster):
        t = GpuType(slowdown=2.0)
        gpu_pair = frozenset({"r0n0", "r0n1"})
        mixed = frozenset({"r0n0", "r1n0"})
        assert t.true_runtime(cluster, gpu_pair, 60.0, 2) == 60.0
        assert t.true_runtime(cluster, mixed, 60.0, 2) == 120.0

    def test_bad_slowdown(self):
        with pytest.raises(WorkloadError):
            GpuType(slowdown=0.5)


class TestMpi:
    def test_rack_options_plus_fallback(self, cluster):
        opts = MpiType(slowdown=1.5).options(cluster, 3, 60.0)
        # One option per rack (both racks fit 3) + spread fallback.
        assert len(opts) == 3
        assert opts[-1].label == "spread"
        assert opts[-1].duration_s == pytest.approx(90.0)

    def test_rack_too_small_skipped(self, cluster):
        opts = MpiType().options(cluster, 5, 60.0)  # racks hold 4
        assert len(opts) == 1
        assert opts[0].label == "spread"

    def test_true_runtime_rack_local(self, cluster):
        t = MpiType(slowdown=1.5)
        local = frozenset({"r0n0", "r0n1", "r0n2"})
        spread = frozenset({"r0n0", "r1n0"})
        assert t.true_runtime(cluster, local, 60.0, 3) == 60.0
        assert t.true_runtime(cluster, spread, 60.0, 2) == pytest.approx(90.0)

    def test_estimated_options_scale_durations(self, cluster):
        j = Job("j", MpiType(slowdown=1.5), k=2, base_runtime_s=40,
                submit_time=0.0, estimate_error=0.5)
        opts = j.estimated_options(cluster)
        assert opts[0].duration_s == pytest.approx(60.0)     # rack option
        assert opts[-1].duration_s == pytest.approx(90.0)    # spread
