"""Table 2: TetriSched configurations with individual features disabled."""

from conftest import save_and_print

from repro.baselines import TABLE2_CONFIGS
from repro.experiments import table2


def test_table2(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_and_print("table2", result.text)
    full = TABLE2_CONFIGS["TetriSched"]()
    nh = TABLE2_CONFIGS["TetriSched-NH"]()
    ng = TABLE2_CONFIGS["TetriSched-NG"]()
    np_ = TABLE2_CONFIGS["TetriSched-NP"]()
    assert full.heterogeneity_aware and full.global_scheduling
    assert full.plan_ahead_s > 0
    assert not nh.heterogeneity_aware and nh.global_scheduling
    assert not ng.global_scheduling and ng.heterogeneity_aware
    assert np_.plan_ahead_s == 0 and np_.heterogeneity_aware
