"""The cluster: an immutable collection of nodes with rack/attribute queries.

Mirrors the paper's testbeds: RC256 is 256 slaves in 8 equal racks; RC80 is a
similarly configured 80-node subset (Sec. 6.1).  For heterogeneous workloads
(GS HET) a fraction of racks is GPU-enabled, as in Fig. 1's toy example where
rack 1 has GPUs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.cluster.node import Node
from repro.errors import ClusterError


class Cluster:
    """An indexed, immutable set of :class:`Node`.

    Example
    -------
    >>> c = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    >>> sorted(c.rack_names)
    ['r0', 'r1']
    >>> len(c.nodes_with_attr("gpu"))
    2
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._nodes: dict[str, Node] = {}
        self._racks: dict[str, list[str]] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ClusterError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
            self._racks.setdefault(node.rack, []).append(node.name)
        if not self._nodes:
            raise ClusterError("cluster must contain at least one node")
        self._all_names = frozenset(self._nodes)

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, racks: int, nodes_per_rack: int, gpu_racks: int = 0,
              extra_attrs: Mapping[str, Iterable[str]] | None = None) -> "Cluster":
        """Build a homogeneous-rack cluster like the paper's testbeds.

        Parameters
        ----------
        racks, nodes_per_rack:
            Topology; node names are ``r<i>n<j>``.
        gpu_racks:
            The first ``gpu_racks`` racks get the ``"gpu"`` attribute on all
            their nodes (as in Fig. 1, where rack 1 is GPU-enabled).
        extra_attrs:
            Optional map of node name -> extra attribute tags.
        """
        if racks <= 0 or nodes_per_rack <= 0:
            raise ClusterError("racks and nodes_per_rack must be positive")
        if gpu_racks > racks:
            raise ClusterError(f"gpu_racks {gpu_racks} exceeds racks {racks}")
        extra = {k: frozenset(v) for k, v in (extra_attrs or {}).items()}
        nodes = []
        for r in range(racks):
            rack = f"r{r}"
            base = frozenset({"gpu"}) if r < gpu_racks else frozenset()
            for n in range(nodes_per_rack):
                name = f"{rack}n{n}"
                nodes.append(Node(name, rack, base | extra.get(name, frozenset())))
        return cls(nodes)

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> frozenset[str]:
        """All node names as a frozenset (the whole-cluster equivalence set)."""
        return self._all_names

    @property
    def rack_names(self) -> list[str]:
        return list(self._racks)

    def rack_nodes(self, rack: str) -> frozenset[str]:
        """Equivalence set of all nodes on a rack."""
        try:
            return frozenset(self._racks[rack])
        except KeyError:
            raise ClusterError(f"unknown rack {rack!r}") from None

    def nodes_with_attr(self, attr: str) -> frozenset[str]:
        """Equivalence set of nodes carrying a static attribute tag."""
        return frozenset(n.name for n in self._nodes.values() if n.has_attr(attr))

    def racks_of(self, names: Iterable[str]) -> set[str]:
        """Set of racks spanned by the given node names."""
        return {self.node(n).rack for n in names}

    def validate_names(self, names: Iterable[str]) -> None:
        unknown = set(names) - self._all_names
        if unknown:
            raise ClusterError(f"unknown nodes: {sorted(unknown)}")

    def __repr__(self) -> str:
        return (f"Cluster(nodes={len(self)}, racks={len(self._racks)}, "
                f"gpu={len(self.nodes_with_attr('gpu'))})")
