"""Unit + property tests for the branch-and-bound MILP solver."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.solver import (BranchBoundOptions, BranchBoundSolver, Model,
                          SolveOptions, SolveStatus, make_backend)
from repro.solver.scipy_backend import scipy_available


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.add_constraint(sum(w * x for w, x in zip(weights, xs)), "<=", capacity)
    m.set_objective(sum(v * x for v, x in zip(values, xs)), sense="maximize")
    return m, xs


class TestBranchBound:
    def test_knapsack_optimum(self):
        m, xs = knapsack_model([10, 13, 7], [3, 4, 2], 5)
        res = BranchBoundSolver().solve(m)
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(17.0)  # items 0 and 2

    def test_pure_lp_model_solves_without_branching(self):
        m = Model()
        x = m.add_continuous("x", ub=4)
        m.set_objective(x, sense="maximize")
        res = BranchBoundSolver().solve(m)
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(4.0)

    def test_infeasible_milp(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x, ">=", 2)
        res = BranchBoundSolver().solve(m)
        assert res.status == SolveStatus.INFEASIBLE

    def test_minimization_sense(self):
        m = Model()
        x = m.add_integer("x", lb=0, ub=9)
        m.add_constraint(x, ">=", 3)
        m.set_objective(x, sense="minimize")
        res = BranchBoundSolver().solve(m)
        assert res.objective == pytest.approx(3.0)

    def test_warm_start_accepted(self):
        m, xs = knapsack_model([10, 13, 7], [3, 4, 2], 5)
        ws = np.array([1.0, 0.0, 1.0])
        res = BranchBoundSolver().solve(m, SolveOptions(warm_start=ws))
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(17.0)

    def test_infeasible_warm_start_ignored(self):
        m, xs = knapsack_model([10, 13, 7], [3, 4, 2], 5)
        ws = np.array([1.0, 1.0, 1.0])  # violates capacity
        res = BranchBoundSolver().solve(m, SolveOptions(warm_start=ws))
        assert res.objective == pytest.approx(17.0)

    def test_legacy_warm_start_kwarg_raises(self):
        m, xs = knapsack_model([10, 13, 7], [3, 4, 2], 5)
        ws = np.array([1.0, 0.0, 1.0])
        with pytest.raises(TypeError):
            BranchBoundSolver().solve(m, warm_start=ws)

    def test_per_call_options_override_constructor(self):
        m, _ = knapsack_model(list(range(1, 9)), [3] * 8, 11)
        solver = BranchBoundSolver()  # default node_limit is large
        res = solver.solve(m, SolveOptions(node_limit=1))
        assert res.nodes <= 1
        # The constructor's options are untouched by per-call overrides.
        assert solver.options.node_limit == 200_000

    def test_node_limit_returns_incumbent_or_none(self):
        m, _ = knapsack_model(list(range(1, 9)), [3] * 8, 11)
        res = BranchBoundSolver(BranchBoundOptions(node_limit=1)).solve(m)
        assert res.status in (SolveStatus.FEASIBLE, SolveStatus.OPTIMAL,
                              SolveStatus.NO_SOLUTION)

    def test_gap_option_allows_early_stop(self):
        m, _ = knapsack_model([5, 4, 3, 6, 7], [4, 3, 2, 5, 6], 10)
        res = BranchBoundSolver(BranchBoundOptions(rel_gap=0.5)).solve(m)
        assert res.status.has_solution
        # Must be within 50% of the true optimum (12).
        assert res.objective >= 0.5 * 12 - 1e-9

    def test_integer_equality(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constraint(x + 2 * y, "==", 7)
        m.set_objective(x + y, sense="minimize")
        res = BranchBoundSolver().solve(m)
        assert res.status == SolveStatus.OPTIMAL
        # y=3, x=1 -> 4
        assert res.objective == pytest.approx(4.0)

    def test_value_of_accessor(self):
        m, xs = knapsack_model([10, 13, 7], [3, 4, 2], 5)
        res = BranchBoundSolver().solve(m)
        assert res.value_of(xs[0]) == pytest.approx(1.0)
        assert res.value_of(xs[1]) == pytest.approx(0.0)


@pytest.mark.skipif(not scipy_available(), reason="scipy required")
class TestBackendsAgree:
    """Differential testing: pure B&B vs HiGHS MILP on random knapsacks."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_knapsacks(self, data):
        n = data.draw(st.integers(1, 7))
        values = data.draw(st.lists(st.integers(1, 12), min_size=n, max_size=n))
        weights = data.draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
        cap = data.draw(st.integers(0, 15))
        m1, _ = knapsack_model(values, weights, cap)
        m2, _ = knapsack_model(values, weights, cap)
        pure = make_backend("pure").solve(m1)
        ref = make_backend("scipy").solve(m2)
        assert pure.status.has_solution and ref.status.has_solution
        assert pure.objective == pytest.approx(ref.objective, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_integer_programs(self, data):
        """General small IPs with >= and == rows, both senses."""
        n = data.draw(st.integers(2, 5))
        m1, m2 = Model(), Model()
        for mod in (m1, m2):
            xs = [mod.add_integer(f"x{i}", ub=6) for i in range(n)]
        xs1 = m1.variables
        xs2 = m2.variables
        coefs = data.draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
        assume(any(coefs))  # all-zero rows make constant constraints
        rhs = data.draw(st.integers(0, 12))
        sense = data.draw(st.sampled_from(["<=", ">="]))
        obj = data.draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n))
        for mod, xs in ((m1, xs1), (m2, xs2)):
            mod.add_constraint(sum(c * x for c, x in zip(coefs, xs)), sense, rhs)
            # Keep >= cases bounded via the ub=6 variable bounds.
            mod.set_objective(sum(c * x for c, x in zip(obj, xs)),
                              sense="maximize")
        pure = make_backend("pure").solve(m1)
        ref = make_backend("scipy").solve(m2)
        assert pure.status.has_solution == ref.status.has_solution
        if pure.status.has_solution:
            assert pure.objective == pytest.approx(ref.objective, abs=1e-6)
            assert m1.check_feasible(pure.x)
