"""TetriSched reproduction (EuroSys 2016).

A full-system Python reproduction of *TetriSched: global rescheduling with
adaptive plan-ahead in dynamic heterogeneous clusters* (Tumanov et al.,
EuroSys'16), including every substrate the paper depends on:

* :mod:`repro.solver` — MILP substrate (pure-Python simplex +
  branch-and-bound; optional scipy/HiGHS backend), replacing CPLEX;
* :mod:`repro.strl` — the Space-Time Request Language (AST, parser,
  generator, RDL translation);
* :mod:`repro.cluster` — nodes, racks, attributes, equivalence-set
  partitioning, space-time availability;
* :mod:`repro.core` — the TetriSched scheduler (Algorithm 1 compiler,
  plan-ahead, adaptive re-planning, global & greedy modes);
* :mod:`repro.reservation` — Rayon-style admission control;
* :mod:`repro.baselines` — the Rayon/CapacityScheduler stack and the
  Table 2 feature ablations;
* :mod:`repro.sim` — discrete-event cluster simulator (replacing the
  paper's 256/80-node testbeds);
* :mod:`repro.workloads` — SWIM-derived and synthetic workload generators
  (Table 1 compositions);
* :mod:`repro.service` — long-lived asyncio scheduler service: HTTP/JSON
  API (submit, cancel, cluster events, graceful drain) over a
  timer-driven cycle loop with cross-cycle delta compilation;
* :mod:`repro.experiments` — one driver per paper table/figure;
* :mod:`repro.verify` — independent schedule auditor, MILP certificate
  checker, and the differential fuzz harness (``python -m repro fuzz``).

Quickstart
----------
>>> from repro import Cluster, TetriSchedConfig, TetriSchedAdapter
>>> from repro import Job, UnconstrainedType, Simulation
>>> cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
>>> sched = TetriSchedAdapter(cluster, TetriSchedConfig(quantum_s=10,
...                                                     cycle_s=10))
>>> jobs = [Job("j1", UnconstrainedType(), k=2, base_runtime_s=30,
...             submit_time=0.0, deadline=120.0)]
>>> result = Simulation(cluster, sched, jobs).run()
>>> result.metrics.slo_total_pct
100.0
"""

from repro.api import Scheduler
from repro.cluster import Cluster, ClusterState, Node
from repro.core import (Allocation, CycleDelta, DeltaDivergence, JobRequest,
                        PriorityClass, StrlCompiler, TetriSched,
                        TetriSchedConfig)
from repro.pipeline import (CyclePipeline, StageName, global_pipeline,
                            greedy_pipeline)
from repro.reservation import RayonReservationSystem
from repro.service import SchedulerService, ServiceServer
from repro.shard import (DomainCoordinator, DomainPartitioner,
                         SchedulingDomain)
from repro.sim import (GpuType, Job, MpiType, ServiceAdapter, Simulation,
                       SimulationResult, TetriSchedAdapter,
                       UnconstrainedType)
from repro.solver import (ComponentCache, Model, SolveOptions, SolveStatus,
                          make_backend)
from repro.strl import (Barrier, LnCk, Max, Min, NCk, Scale, SpaceOption,
                        Sum, parse, to_text)
from repro.valuefn import best_effort_value, slo_value
from repro.verify import (AuditReport, AuditViolation, CertificateReport,
                          audit_cycle, audit_sharded, check_certificate)

__version__ = "1.0.0"

__all__ = [
    "Allocation", "AuditReport", "AuditViolation", "Barrier",
    "CertificateReport", "Cluster", "ClusterState", "ComponentCache",
    "CycleDelta", "CyclePipeline", "DeltaDivergence", "DomainCoordinator",
    "DomainPartitioner", "GpuType", "Job", "JobRequest", "LnCk", "Max",
    "Min", "Model", "MpiType", "NCk", "Node", "PriorityClass",
    "RayonReservationSystem", "Scale", "Scheduler", "SchedulerService",
    "SchedulingDomain", "ServiceAdapter", "ServiceServer", "Simulation",
    "SimulationResult", "SolveOptions", "SolveStatus", "SpaceOption",
    "StageName", "StrlCompiler", "Sum", "TetriSched", "TetriSchedAdapter",
    "TetriSchedConfig", "UnconstrainedType", "audit_cycle", "audit_sharded",
    "best_effort_value", "check_certificate", "global_pipeline",
    "greedy_pipeline", "make_backend", "parse", "slo_value", "to_text",
]
