"""Run one (scheduler stack, workload, parameters) experiment.

The paper's testbeds are scaled down so a full sweep finishes in seconds on
a laptop (DESIGN.md documents the substitution):

* ``RC256_SCALED`` — 8 racks x 8 nodes = 64 nodes (paper: 8 x 32 = 256);
* ``RC80_SCALED`` — 4 racks x 8 nodes = 32 nodes (paper: 80-node subset),
  with half the racks GPU-enabled for the heterogeneous workloads.

Load is held near 100 % of capacity in all experiments, as in the paper, so
all behaviour that depends on *relative* pressure is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.capacity_scheduler import CapacityScheduler
from repro.baselines.edf import EdfScheduler
from repro.baselines.variants import TABLE2_CONFIGS
from repro.cluster.cluster import Cluster
from repro.core.scheduler import TetriSchedConfig
from repro.errors import ReproError
from repro.reservation.rayon import RayonReservationSystem
from repro.sim.adapters import TetriSchedAdapter
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.faults import FaultModel
from repro.workloads.compositions import WorkloadComposition
from repro.workloads.gridmix import GridmixConfig, generate_workload


@dataclass(frozen=True)
class ClusterSpec:
    """Topology of a simulated testbed."""

    racks: int
    nodes_per_rack: int
    gpu_racks: int = 0

    def build(self) -> Cluster:
        return Cluster.build(self.racks, self.nodes_per_rack, self.gpu_racks)

    @property
    def size(self) -> int:
        return self.racks * self.nodes_per_rack


#: Scaled stand-ins for the paper's testbeds (Sec. 6.1).
RC256_SCALED = ClusterSpec(racks=8, nodes_per_rack=8)
RC80_SCALED = ClusterSpec(racks=4, nodes_per_rack=8, gpu_racks=2)

#: Scheduler stack names accepted by :func:`run_experiment`.
SCHEDULER_NAMES = ("Rayon/CS", "EDF", "TetriSched", "TetriSched-NH",
                   "TetriSched-NG", "TetriSched-NP")


@dataclass(frozen=True)
class RunSpec:
    """Full description of one experiment run."""

    scheduler: str
    composition: WorkloadComposition
    cluster: ClusterSpec
    num_jobs: int = 48
    seed: int = 0
    estimate_error: float = 0.0
    target_utilization: float = 1.0
    quantum_s: float = 10.0
    cycle_s: float = 10.0
    plan_ahead_s: float = 96.0
    backend: str = "auto"
    rel_gap: float = 0.02
    solver_time_limit: float | None = None
    max_time_s: float = 100_000.0
    #: Extension: MILP-native preemption of running best-effort jobs.
    enable_preemption: bool = False
    #: Cross-cycle delta compilation: ``off`` | ``on`` | ``verify``.
    delta_mode: str = "off"
    #: Arrival burstiness (CV of inter-arrival gaps; 1.0 = Poisson).
    burstiness: float = 1.0
    #: Heterogeneity intensity: sub-optimal-placement slowdown factor.
    slowdown: float = 1.5
    #: Fraction of best-effort jobs generated as malleable elastic gangs.
    elastic_fraction: float = 0.0
    #: Scaling efficiency of generated elastic gangs (1.0 = the paper's
    #: constant-area space-time shapes; <1 = narrow widths inflate work).
    elastic_efficiency: float = 1.0
    #: Extension: per-cycle width re-planning of running elastic gangs.
    elastic_mode: bool = False
    #: Value charged when a running elastic gang grows (reconfiguration).
    reconfig_penalty: float = 1.0
    #: Per-launch mid-run failure probability (0 = no fault injection).
    failure_prob: float = 0.0

    def with_(self, **overrides) -> "RunSpec":
        return replace(self, **overrides)


def _tetrisched_config(spec: RunSpec, variant: str) -> TetriSchedConfig:
    factory = TABLE2_CONFIGS[variant]
    return factory(quantum_s=spec.quantum_s, cycle_s=spec.cycle_s,
                   plan_ahead_s=spec.plan_ahead_s, backend=spec.backend,
                   rel_gap=spec.rel_gap,
                   solver_time_limit=spec.solver_time_limit,
                   enable_preemption=spec.enable_preemption,
                   delta_mode=spec.delta_mode,
                   elastic_mode=spec.elastic_mode,
                   reconfig_penalty=spec.reconfig_penalty,
                   # One seed drives everything derived from the config:
                   # domain tie-breaks, pool dispatch order, workloads.
                   seed=spec.seed)


def build_scheduler(spec: RunSpec, cluster: Cluster,
                    rayon: RayonReservationSystem):
    """Instantiate the requested scheduler stack."""
    if spec.scheduler == "Rayon/CS":
        return CapacityScheduler(cluster, rayon, cycle_s=spec.cycle_s)
    if spec.scheduler == "EDF":
        return EdfScheduler(cluster, cycle_s=spec.cycle_s)
    if spec.scheduler in TABLE2_CONFIGS:
        config = _tetrisched_config(spec, spec.scheduler)
        # -NP is "no plan-ahead" regardless of the sweep's plan_ahead_s.
        return TetriSchedAdapter(cluster, config, name=spec.scheduler)
    raise ReproError(
        f"unknown scheduler {spec.scheduler!r}; expected one of "
        f"{SCHEDULER_NAMES}")


def run_experiment(spec: RunSpec) -> SimulationResult:
    """Generate the workload, build the stack, simulate, return metrics.

    Both stacks share the same Rayon instance semantics: each run creates a
    fresh reservation system with the cluster's capacity, and the simulator
    routes every SLO job's admission through it.
    """
    cluster = spec.cluster.build()
    workload = generate_workload(
        spec.composition, cluster,
        GridmixConfig(num_jobs=spec.num_jobs,
                      target_utilization=spec.target_utilization,
                      estimate_error=spec.estimate_error,
                      burstiness=spec.burstiness, slowdown=spec.slowdown,
                      elastic_fraction=spec.elastic_fraction,
                      elastic_efficiency=spec.elastic_efficiency,
                      seed=spec.seed))
    rayon = RayonReservationSystem(capacity=len(cluster), step_s=spec.cycle_s)
    scheduler = build_scheduler(spec, cluster, rayon)
    faults = (FaultModel(spec.failure_prob, seed=spec.seed + 1)
              if spec.failure_prob > 0.0 else None)
    sim = Simulation(cluster, scheduler, workload, rayon=rayon,
                     max_time_s=spec.max_time_s, faults=faults)
    result = sim.run()
    return result
