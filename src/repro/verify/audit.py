"""Schedule auditing: recheck a cycle's decisions against STRL semantics.

The compiler (Algorithm 1) encodes space-time feasibility as MILP
constraints; the solver stack then has five configurations that all claim
to respect them.  The auditor trusts none of that.  Given the cluster
state, the compiled batch, and a solve result, it independently rechecks:

* **capacity** — for every (partition, quantum) pair in the plan-ahead
  window, the nodes the solution assigns never exceed the nodes actually
  free, recomputed here from the raw running-allocation ledger;
* **shape conformance** — each ``nCk`` leaf takes exactly ``k`` nodes or
  none, ``LnCk`` at most ``k``, ``max`` activates at most one child,
  ``min`` gangs are all-or-nothing, and a ``barrier`` only yields value
  when its child actually reaches the threshold;
* **double placement** — no already-running job receives new resources
  (unless the solve explicitly preempted it or re-planned its width), and
  this cycle's launch decisions use disjoint, currently-free nodes
  matching the solved counts;
* **elastic lifecycle** — an ``ElasticNCk`` activates at most one width,
  inside its declared ``[min, max]`` band, with value reconciled at the
  *chosen* width; a resize decision must have released the old
  allocation's quanta back to the ledger (no leak) while a keep decision
  must have left it untouched;
* **objective reconciliation** — the claimed MILP objective is recomputed
  bottom-up from the STRL trees (i.e. from the value functions the
  generator baked into the leaves) minus any preemption penalties; a
  solver configuration claiming value the schedule does not deliver is
  flagged.

Violations are structured (:class:`Violation`) and surface either as a
report (:func:`audit_cycle`) or as a raised :class:`AuditViolation`
(the pipeline's audit stage).  The evaluation walks the STRL AST directly
— it shares no code with the compiler's ``gen()`` — so an encoding bug
and its decoder cannot agree by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.solver.result import SolveStatus
from repro.strl.ast import (Barrier, ElasticNCk, LnCk, Max, Min, NCk, Scale,
                            StrlNode, Sum)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cluster.state import ClusterState
    from repro.core.allocation import Allocation
    from repro.core.compiler import CompiledBatch, LeafRecord
    from repro.solver.result import MILPResult


@dataclass(frozen=True)
class Violation:
    """One audited invariant that did not hold.

    ``kind`` is a stable dotted identifier (``"audit.capacity"``,
    ``"certificate.integrality"``, ...) suitable for counting and
    filtering; ``context`` carries the numbers behind the message.
    """

    kind: str
    message: str
    context: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


class AuditViolation(ReproError):
    """Raised when verification finds one or more violations.

    Carries every :class:`Violation` found (``.violations``), not just the
    first, so a failing audit reports the full damage at once.
    """

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations: tuple[Violation, ...] = tuple(violations)
        if not self.violations:
            raise ValueError("AuditViolation requires at least one violation")
        head = self.violations[0]
        extra = (f" (+{len(self.violations) - 1} more)"
                 if len(self.violations) > 1 else "")
        super().__init__(f"{head}{extra}")


@dataclass
class AuditReport:
    """Everything one audit pass established about a cycle's solution."""

    violations: tuple[Violation, ...]
    #: Active leaf placements found in the solution.
    placements: int = 0
    #: (partition, quantum) capacity cells rechecked.
    quanta_checked: int = 0
    #: Objective the result claimed.
    objective_claimed: float = float("nan")
    #: Objective recomputed bottom-up from the STRL trees.
    objective_recomputed: float = float("nan")
    #: Jobs the solution chose to preempt.
    preempted: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditViolation` when any invariant failed."""
        if self.violations:
            raise AuditViolation(self.violations)


@dataclass
class _LeafUse:
    """One active leaf's decoded space-time demand."""

    job_id: str
    start: int
    duration: int
    counts: dict[int, int]  # pid -> node count


class _StrlEvaluator:
    """Bottom-up STRL evaluation of a solution, independent of the MILP.

    The compiler creates leaf records in pre-order leaf order per job, so
    zipping ``expr.leaves()`` against that job's records recovers the
    variable mapping without touching compiler internals beyond the
    documented :class:`~repro.core.compiler.LeafRecord` bookkeeping.
    """

    def __init__(self, records: "Iterable[LeafRecord]", x: np.ndarray,
                 violations: list[Violation], tol: float) -> None:
        self._records = iter(records)
        self._x = x
        self._violations = violations
        self._tol = tol
        self.uses: list[_LeafUse] = []

    def evaluate(self, job_id: str, expr: StrlNode) -> float:
        value, _active = self._eval(job_id, expr)
        leftover = next(self._records, None)
        if leftover is not None:
            self._violations.append(Violation(
                "audit.leaf-mismatch",
                f"job {job_id!r}: compiled batch has more leaf records "
                f"than the STRL tree has leaves"))
        return value

    # -- recursive walk ----------------------------------------------------
    def _eval(self, job_id: str, expr: StrlNode) -> tuple[float, bool]:
        if isinstance(expr, (NCk, LnCk)):
            return self._eval_leaf(job_id, expr)
        if isinstance(expr, Max):
            return self._eval_max(job_id, expr)
        if isinstance(expr, ElasticNCk):
            return self._eval_elastic(job_id, expr)
        if isinstance(expr, Min):
            return self._eval_min(job_id, expr)
        if isinstance(expr, Sum):
            values, actives = zip(*(self._eval(job_id, c)
                                    for c in expr.subexprs))
            return sum(values), any(actives)
        if isinstance(expr, Scale):
            value, active = self._eval(job_id, expr.subexpr)
            return expr.factor * value, active
        if isinstance(expr, Barrier):
            return self._eval_barrier(job_id, expr)
        raise ReproError(f"cannot audit STRL node {expr!r}")

    def _eval_leaf(self, job_id: str, leaf: NCk | LnCk) -> tuple[float, bool]:
        rec = next(self._records, None)
        if rec is None or rec.leaf != leaf or rec.job_id != job_id:
            self._violations.append(Violation(
                "audit.leaf-mismatch",
                f"job {job_id!r}: leaf {leaf!r} has no matching compiled "
                f"record (batch/tree structure diverged)"))
            return 0.0, False
        indicator_on = self._x[rec.indicator.index] > 0.5
        counts: dict[int, int] = {}
        for pid, var in rec.partition_vars.items():
            v = int(round(float(self._x[var.index])))
            if v < 0:
                self._violations.append(Violation(
                    "audit.negative-count",
                    f"job {job_id!r}: partition {pid} assigned {v} nodes"))
                v = 0
            if v:
                counts[pid] = v
        total = sum(counts.values())

        if isinstance(leaf, NCk):
            if indicator_on and total != leaf.k:
                self._violations.append(Violation(
                    "audit.nck-shape",
                    f"job {job_id!r}: active nCk leaf (start={leaf.start}, "
                    f"dur={leaf.duration}) took {total} nodes, needs "
                    f"exactly k={leaf.k}",
                    {"job": job_id, "got": total, "k": leaf.k}))
            if not indicator_on and total != 0:
                self._violations.append(Violation(
                    "audit.nck-orphan",
                    f"job {job_id!r}: inactive nCk leaf still holds "
                    f"{total} nodes",
                    {"job": job_id, "got": total}))
            active = indicator_on and total == leaf.k
            value = leaf.value if active else 0.0
        else:  # LnCk
            if total > leaf.k:
                self._violations.append(Violation(
                    "audit.lnck-shape",
                    f"job {job_id!r}: LnCk leaf took {total} nodes, "
                    f"cap is k={leaf.k}",
                    {"job": job_id, "got": total, "k": leaf.k}))
            if total and not indicator_on:
                self._violations.append(Violation(
                    "audit.lnck-orphan",
                    f"job {job_id!r}: LnCk leaf holds {total} nodes with "
                    f"its indicator off"))
            active = total > 0
            value = leaf.value * min(total, leaf.k) / leaf.k

        if total:
            self.uses.append(_LeafUse(job_id, leaf.start, leaf.duration,
                                      counts))
        return value, active

    def _eval_max(self, job_id: str, expr: Max) -> tuple[float, bool]:
        values, actives = zip(*(self._eval(job_id, c)
                                for c in expr.subexprs))
        if sum(actives) > 1:
            self._violations.append(Violation(
                "audit.max-choice",
                f"job {job_id!r}: max activated {sum(actives)} children "
                f"(at most one allowed)",
                {"job": job_id, "active": int(sum(actives))}))
        # Inactive children contribute 0, so the sum is the chosen child.
        return sum(values), any(actives)

    def _eval_elastic(self, job_id: str,
                      expr: ElasticNCk) -> tuple[float, bool]:
        """Elastic-shape conformance: one width, inside ``[min, max]``.

        The per-width options are ordinary ``nCk`` leaves, so the exact-k
        and value-at-chosen-width checks fall out of :meth:`_eval_leaf`;
        what is elastic-specific is that at most one width may be active
        and that any active width lies within the declared band.
        """
        children = expr.children()
        values, actives = zip(*(self._eval(job_id, c) for c in children))
        n_active = int(sum(actives))
        if n_active > 1:
            self._violations.append(Violation(
                "audit.elastic-width-choice",
                f"job {job_id!r}: elastic leaf (start={expr.start}) "
                f"activated {n_active} widths (at most one allowed)",
                {"job": job_id, "active": n_active}))
        for child, active in zip(children, actives):
            if active and not (expr.min_width <= child.k <= expr.max_width):
                self._violations.append(Violation(
                    "audit.elastic-width",
                    f"job {job_id!r}: elastic leaf allocated width "
                    f"{child.k} outside [{expr.min_width}, "
                    f"{expr.max_width}]",
                    {"job": job_id, "width": child.k,
                     "min": expr.min_width, "max": expr.max_width}))
        # Inactive widths contribute 0, so the sum is the chosen width's
        # value — reconciled at that width by the leaf check above.
        return sum(values), any(actives)

    def _eval_min(self, job_id: str, expr: Min) -> tuple[float, bool]:
        values, actives = zip(*(self._eval(job_id, c)
                                for c in expr.subexprs))
        if any(actives) and not all(actives):
            self._violations.append(Violation(
                "audit.min-partial-gang",
                f"job {job_id!r}: min gang partially satisfied "
                f"({sum(actives)}/{len(actives)} children active)",
                {"job": job_id, "active": int(sum(actives)),
                 "children": len(actives)}))
        if all(actives):
            return min(values), True
        return 0.0, False

    def _eval_barrier(self, job_id: str, expr: Barrier) -> tuple[float, bool]:
        value, active = self._eval(job_id, expr.subexpr)
        if active and value < expr.threshold - self._tol:
            self._violations.append(Violation(
                "audit.barrier-underflow",
                f"job {job_id!r}: barrier yielded its threshold "
                f"{expr.threshold:g} but the child only reached {value:g}",
                {"job": job_id, "threshold": expr.threshold,
                 "child_value": value}))
        if active and value >= expr.threshold - self._tol:
            return expr.threshold, True
        return 0.0, False


def _independent_busy_quanta(state: "ClusterState", now: float,
                             quantum_s: float,
                             exclude: frozenset = frozenset()
                             ) -> dict[str, int]:
    """Per-node held-quanta, recomputed from the raw allocation ledger.

    Deliberately re-derives what :meth:`ClusterState.busy_quanta` computes
    (same documented semantics: overdue jobs hold at least one quantum) so
    the audit does not depend on the method the compiler itself used.
    ``exclude`` drops the named jobs' holdings — used for running elastic
    jobs whose *keep* decision re-books their own quanta through a leaf
    placement, mirroring the freed-supply coefficients the MILP carried.
    """
    busy: dict[str, int] = {}
    for alloc in state.running_jobs:
        if alloc.job_id in exclude:
            continue
        remaining = alloc.expected_end - now
        quanta = max(1, math.ceil(remaining / quantum_s - 1e-9))
        for n in alloc.nodes:
            busy[n] = max(busy.get(n, 0), quanta)
    return busy


def audit_cycle(state: "ClusterState", compiled: "CompiledBatch",
                result: "MILPResult",
                exprs: Sequence[tuple[str, StrlNode]], *,
                quantum_s: float, now: float = 0.0,
                allocations: "Sequence[Allocation]" = (),
                tol: float = 1e-6) -> AuditReport:
    """Audit one cycle's solve result against the space-time invariants.

    Parameters
    ----------
    state:
        Cluster state *after* any preemptions chosen by the solution were
        applied and *before* this cycle's launches started — exactly the
        ledger the solution's supply must fit into.  (The pipeline's audit
        stage runs between Extract and the launch loop, which is this
        point; standalone callers without preemption can pass the
        pre-solve state unchanged.)
    compiled:
        The compiled batch the result solves.
    result:
        The solve result under audit.
    exprs:
        The ``(job_id, STRL root)`` pairs that were compiled, in batch
        order — the independent semantic ground truth.
    quantum_s, now:
        Cycle quantization parameters.
    allocations:
        This cycle's launch decisions (``start == 0`` placements already
        merged per job), when available.  Checked for node disjointness,
        freeness, and agreement with the solved counts.
    """
    violations: list[Violation] = []
    if result.x is None:
        if result.status.has_solution:
            violations.append(Violation(
                "audit.missing-point",
                f"status {result.status.value} claims a solution but "
                f"carries no point"))
        return AuditReport(tuple(violations),
                           objective_claimed=result.objective)
    x = np.asarray(result.x, dtype=float)

    # -- objective reconciliation + shape conformance (one STRL walk) -----
    by_job: dict[str, list] = {}
    for rec in compiled.leaf_records:
        by_job.setdefault(rec.job_id, []).append(rec)
    total_value = 0.0
    uses: list[_LeafUse] = []
    for job_id, expr in exprs:
        ev = _StrlEvaluator(by_job.get(job_id, []), x, violations, tol)
        total_value += ev.evaluate(job_id, expr)
        uses.extend(ev.uses)

    preempted = tuple(compiled.preempted_jobs(x))
    for job_id in preempted:
        var = compiled.preemption_vars[job_id]
        # The kill penalty is the (negated) objective coefficient of the
        # preemption binary; read it back rather than trusting a config.
        total_value -= -compiled.model.objective.coeffs.get(var.index, 0.0)

    # -- elastic width re-planning lifecycle -------------------------------
    # Keep decisions re-book the job's own quanta through a leaf placement
    # (the MILP freed them on the fragment's root indicator), so their
    # holdings leave the busy ledger below; actual resizes must already be
    # *off* the ledger — a still-running old allocation means the freed
    # quanta were spent twice (a ledger leak).
    resize_decisions = compiled.resize_decisions(x)
    keeps: set[str] = set()
    for job_id, width in sorted(resize_decisions.items()):
        cand = compiled.resize_candidates[job_id]
        offered = {rec.leaf.k for rec in by_job.get(job_id, [])}
        if offered and width not in offered:
            violations.append(Violation(
                "audit.elastic-width",
                f"job {job_id!r}: resize chose width {width}, offered "
                f"widths are {sorted(offered)}",
                {"job": job_id, "width": width,
                 "offered": sorted(offered)}))
        if width == cand.width:
            keeps.add(job_id)
            if (not state.is_running(job_id)
                    or state.allocation_of(job_id).nodes != cand.nodes):
                violations.append(Violation(
                    "audit.elastic-keep",
                    f"job {job_id!r}: keep decision (width {width}) but "
                    f"the running allocation changed or vanished",
                    {"job": job_id, "width": width}))
        elif state.is_running(job_id):
            violations.append(Violation(
                "audit.elastic-release",
                f"job {job_id!r}: resized {cand.width} -> {width} but its "
                f"old allocation still holds the ledger (quanta leak)",
                {"job": job_id, "old": cand.width, "new": width}))
    for job_id, cand in sorted(compiled.resize_candidates.items()):
        if job_id not in resize_decisions and not state.is_running(job_id):
            violations.append(Violation(
                "audit.elastic-release",
                f"job {job_id!r}: resize fragment stayed inactive but the "
                f"running allocation vanished from the ledger",
                {"job": job_id, "old": cand.width}))

    scale = max(1.0, abs(total_value))
    if result.objective - total_value > tol * scale:
        violations.append(Violation(
            "audit.objective-phantom",
            f"claimed objective {result.objective:g} exceeds the value the "
            f"schedule actually delivers ({total_value:g})",
            {"claimed": result.objective, "recomputed": total_value}))
    elif (result.status == SolveStatus.OPTIMAL
          and total_value - result.objective > tol * scale):
        # A proven-optimal solve can never under-report either: every
        # auxiliary variable (min's V) is tight at a true optimum.
        violations.append(Violation(
            "audit.objective-underreport",
            f"optimal objective {result.objective:g} under-reports the "
            f"schedule's value ({total_value:g})",
            {"claimed": result.objective, "recomputed": total_value}))

    # -- space-time capacity ----------------------------------------------
    busy = _independent_busy_quanta(state, now, quantum_s,
                                    exclude=frozenset(keeps))
    usage: dict[tuple[int, int], int] = {}
    for use in uses:
        for pid, count in use.counts.items():
            part = compiled.partitioning.partitions[pid]
            if count > len(part.nodes):
                violations.append(Violation(
                    "audit.partition-overflow",
                    f"job {use.job_id!r} takes {count} nodes from "
                    f"partition {pid} of size {len(part.nodes)}"))
            for t in range(use.start, use.start + use.duration):
                usage[(pid, t)] = usage.get((pid, t), 0) + count
    quanta_checked = 0
    for (pid, t), used in sorted(usage.items()):
        part = compiled.partitioning.partitions[pid]
        free = sum(1 for n in part.nodes if busy.get(n, 0) <= t)
        quanta_checked += 1
        if used > free:
            violations.append(Violation(
                "audit.capacity",
                f"partition {pid} oversubscribed at quantum {t}: "
                f"{used} assigned, {free} free",
                {"pid": pid, "t": t, "used": used, "free": free}))

    # -- double placement --------------------------------------------------
    placed_jobs = {use.job_id for use in uses}
    for job_id in sorted(placed_jobs):
        if job_id in compiled.resize_candidates:
            # Width re-planning places running jobs by design: the keep /
            # resize lifecycle was checked above instead.
            continue
        if state.is_running(job_id):
            violations.append(Violation(
                "audit.double-placement",
                f"job {job_id!r} is already running but the solution "
                f"assigns it new resources"))

    # -- launch decisions --------------------------------------------------
    start_now: dict[str, int] = {}
    start_now_parts: dict[str, set[int]] = {}
    for use in uses:
        if use.start == 0:
            start_now[use.job_id] = (start_now.get(use.job_id, 0)
                                     + sum(use.counts.values()))
            start_now_parts.setdefault(use.job_id, set()).update(use.counts)
    free_now = state.free_nodes()
    seen_nodes: dict[str, str] = {}
    for alloc in allocations:
        expected = start_now.get(alloc.job_id)
        if expected is None:
            violations.append(Violation(
                "audit.unplanned-launch",
                f"allocation for {alloc.job_id!r} has no start-now "
                f"placement in the solution"))
        elif len(alloc.nodes) != expected:
            violations.append(Violation(
                "audit.launch-size",
                f"allocation for {alloc.job_id!r} has {len(alloc.nodes)} "
                f"nodes, solution assigns {expected}",
                {"job": alloc.job_id, "got": len(alloc.nodes),
                 "expected": expected}))
        else:
            allowed: set[str] = set()
            for pid in start_now_parts.get(alloc.job_id, ()):
                allowed |= compiled.partitioning.partitions[pid].nodes
            stray = alloc.nodes - allowed
            if stray:
                violations.append(Violation(
                    "audit.launch-nodes",
                    f"allocation for {alloc.job_id!r} uses nodes outside "
                    f"its solved partitions: {sorted(stray)[:4]}"))
        not_free = alloc.nodes - free_now
        if not_free:
            violations.append(Violation(
                "audit.launch-busy-nodes",
                f"allocation for {alloc.job_id!r} uses busy nodes: "
                f"{sorted(not_free)[:4]}"))
        for n in alloc.nodes:
            if n in seen_nodes:
                violations.append(Violation(
                    "audit.launch-overlap",
                    f"node {n!r} launched for both "
                    f"{seen_nodes[n]!r} and {alloc.job_id!r}"))
            seen_nodes[n] = alloc.job_id

    return AuditReport(
        tuple(violations), placements=len(uses),
        quanta_checked=quanta_checked,
        objective_claimed=result.objective,
        objective_recomputed=total_value, preempted=preempted)


def audit_sharded(state: "ClusterState",
                  batches: Sequence[tuple], *,
                  quantum_s: float, now: float = 0.0,
                  allocations: "Sequence[Allocation]" = (),
                  reconcile: "tuple | None" = None,
                  tol: float = 1e-6) -> AuditReport:
    """Audit a sharded cycle's reconciled global schedule.

    ``batches`` is one ``(domain_nodes, compiled, result, exprs)`` tuple
    per solved domain; ``reconcile`` the optional boundary coupling solve
    as ``(compiled, result, exprs)``.  Beyond running :func:`audit_cycle`
    on every batch (capacity, shape, objective reconciliation — each
    sound in isolation because domains draw from disjoint supply), the
    cross-domain invariants are checked:

    * domain node-sets are pairwise disjoint, and every partition a
      domain's model references stays inside its domain (no supply
      escape);
    * no job was solved by more than one batch;
    * launch decisions use globally disjoint nodes, and launches not
      covered by any batch (greedy-fallback domains) use free nodes;
    * aggregate space-time capacity: per future quantum, the node-count
      demanded across *all* batches (domains plus reconciliation) fits
      the node-count actually free on the ledger.  (Node-exact global
      feasibility is enforced at materialization time by the shared
      accumulator, which raises on any true conflict; the aggregate
      check is the independent oracle over the same decisions.)
    """
    violations: list[Violation] = []
    placements = 0
    quanta_checked = 0
    claimed = 0.0
    recomputed = 0.0
    preempted: list[str] = []

    # -- domain disjointness + supply escape -------------------------------
    owner_nodes: dict[str, int] = {}
    for bi, (nodes, compiled, _res, _exprs) in enumerate(batches):
        for n in nodes:
            if n in owner_nodes:
                violations.append(Violation(
                    "audit.shard.domain-overlap",
                    f"node {n!r} belongs to domain batches "
                    f"{owner_nodes[n]} and {bi}"))
            owner_nodes[n] = bi
        # The partitioning itself always covers the whole universe (the
        # compiler partitions state.universe); what must stay inside the
        # domain is the supply each leaf can actually draw on.
        referenced: set[str] = set()
        for rec in compiled.leaf_records:
            referenced.update(rec.leaf.nodes)
        escape = frozenset(referenced) - nodes
        if escape:
            violations.append(Violation(
                "audit.shard.domain-escape",
                f"domain batch {bi} references nodes outside its domain: "
                f"{sorted(escape)[:4]}"))

    # -- per-batch audits + job ownership ----------------------------------
    job_owner: dict[str, int] = {}
    covered_jobs: set[str] = set()
    all_batches = [(compiled, res, exprs)
                   for _nodes, compiled, res, exprs in batches]
    if reconcile is not None:
        all_batches.append(reconcile)
    for bi, (compiled, res, exprs) in enumerate(all_batches):
        batch_jobs = {job_id for job_id, _ in exprs}
        for job_id in sorted(batch_jobs):
            if job_id in job_owner:
                violations.append(Violation(
                    "audit.shard.job-overlap",
                    f"job {job_id!r} was solved by batches "
                    f"{job_owner[job_id]} and {bi}"))
            job_owner[job_id] = bi
        covered_jobs |= batch_jobs
        sub_allocs = [a for a in allocations if a.job_id in batch_jobs]
        report = audit_cycle(state, compiled, res, exprs,
                             quantum_s=quantum_s, now=now,
                             allocations=sub_allocs, tol=tol)
        violations.extend(report.violations)
        placements += report.placements
        quanta_checked += report.quanta_checked
        if not math.isnan(report.objective_claimed):
            claimed += report.objective_claimed
        if not math.isnan(report.objective_recomputed):
            recomputed += report.objective_recomputed
        preempted.extend(report.preempted)

    # -- global launch disjointness + uncovered launches -------------------
    free_now = state.free_nodes()
    seen_nodes: dict[str, str] = {}
    for alloc in allocations:
        for n in alloc.nodes:
            if n in seen_nodes and seen_nodes[n] != alloc.job_id:
                violations.append(Violation(
                    "audit.shard.launch-overlap",
                    f"node {n!r} launched for both {seen_nodes[n]!r} "
                    f"and {alloc.job_id!r}"))
            seen_nodes[n] = alloc.job_id
        if alloc.job_id not in covered_jobs:
            # Greedy-fallback launches have no MILP batch to audit them
            # against; check freeness directly.
            not_free = alloc.nodes - free_now
            if not_free:
                violations.append(Violation(
                    "audit.shard.fallback-busy-nodes",
                    f"fallback allocation for {alloc.job_id!r} uses busy "
                    f"nodes: {sorted(not_free)[:4]}"))

    # -- aggregate space-time capacity across every batch ------------------
    busy = _independent_busy_quanta(state, now, quantum_s)
    demand: dict[int, int] = {}
    for compiled, res, exprs in all_batches:
        if res.x is None:
            continue
        for pl in compiled.decode(np.asarray(res.x, dtype=float)):
            for t in range(pl.start, pl.start + pl.duration):
                demand[t] = demand.get(t, 0) + pl.total_nodes
    drained = state.drained_nodes
    for t, used in sorted(demand.items()):
        # A node is free at quantum t unless drained or still held (never
        # double-subtracted — a drained node a job still holds counts once).
        free = sum(1 for n in state.universe
                   if n not in drained and busy.get(n, 0) <= t)
        quanta_checked += 1
        if used > free:
            violations.append(Violation(
                "audit.shard.aggregate-capacity",
                f"quantum {t}: {used} nodes demanded across all domain "
                f"batches, only {free} free cluster-wide",
                {"t": t, "used": used, "free": free}))

    return AuditReport(tuple(violations), placements=placements,
                       quanta_checked=quanta_checked,
                       objective_claimed=claimed,
                       objective_recomputed=recomputed,
                       preempted=tuple(preempted))


def check_ledger_orphans(state: "ClusterState",
                         launched: Mapping[str, object]
                         ) -> tuple[Violation, ...]:
    """Check the allocation ledger against the scheduler's launch registry.

    Every running allocation must belong to a job the scheduler launched
    (and has not yet seen finish or cancel).  An orphan means a lifecycle
    transition touched one side only — the classic stale-state hazard of
    cancellation racing a scheduling cycle: the job's nodes would stay
    held forever while the scheduler forgot the job exists.
    """
    violations: list[Violation] = []
    for alloc in state.running_jobs:
        if alloc.job_id not in launched:
            violations.append(Violation(
                "audit.ledger-orphan",
                f"job {alloc.job_id!r} holds {len(alloc.nodes)} node(s) on "
                f"the cluster ledger but is unknown to the scheduler's "
                f"launch registry",
                context={"job_id": alloc.job_id,
                         "nodes": sorted(alloc.nodes)}))
    return tuple(violations)


__all__ = ["AuditReport", "AuditViolation", "Violation", "audit_cycle",
           "audit_sharded", "check_ledger_orphans"]
