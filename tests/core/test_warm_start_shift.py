"""Warm-start time-shifting across cycles (Sec. 3.2.2) and cache safety.

The scheduler caches the previous cycle's accepted plan and re-offers it,
shifted forward by the elapsed quanta, as the next solve's feasible seed.
These tests pin the shift arithmetic (deferred placements map to the
correct earlier quanta), the drop rules (stale or no-longer-fitting
placements never survive into the seed), and that the component cache
stays correct when cluster supply changes between cycles.
"""

import pytest

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.core.compiler import StrlCompiler
from repro.strl import SpaceOption
from repro.valuefn import StepValue


def make_cluster():
    return Cluster.build(racks=1, nodes_per_rack=4)


def config(**kw):
    defaults = dict(quantum_s=10.0, cycle_s=10.0, plan_ahead_s=40.0,
                    backend="pure", rel_gap=1e-6, warm_start=True)
    defaults.update(kw)
    return TetriSchedConfig(**defaults)


def whole_cluster_request(cluster, job_id, k=4, dur=20, deadline=200.0,
                          value=1000.0):
    return JobRequest(
        job_id=job_id,
        options=(SpaceOption(cluster.node_names, k=k, duration_s=dur),),
        value_fn=StepValue(value, deadline),
        priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
        deadline=deadline)


def deferred_scheduler():
    """Cycle 0 launches job ``a`` and defers job ``b`` (both need all 4
    nodes), so ``_prev_plan`` holds b's future-start leaf."""
    cluster = make_cluster()
    sched = TetriSched(cluster, config())
    sched.submit(whole_cluster_request(cluster, "a", value=1000.0))
    sched.submit(whole_cluster_request(cluster, "b", value=999.0))
    res = sched.run_cycle(0.0)
    assert [a.job_id for a in res.allocations] == ["a"]
    deferred = {jid: leaf for jid, leaf in sched._prev_plan if jid == "b"}
    assert deferred and deferred["b"].start > 0
    return sched, deferred["b"].start


def compile_pending(sched, now):
    exprs = []
    for job_id, req in sched.queues.items():
        expr = sched._generate(req, now)
        exprs.append((job_id, expr))
    return StrlCompiler(sched.state, sched.config.quantum_s, now).compile(exprs)


class TestTimeShift:
    def test_shifted_seed_targets_the_correct_quantum(self):
        """One elapsed quantum moves a start-t leaf to start t-1."""
        sched, prev_start = deferred_scheduler()
        compiled = compile_pending(sched, now=10.0)  # 1 quantum later
        x = sched._build_warm_start(compiled, now=10.0)
        assert x is not None
        chosen = [rec for rec in compiled.leaf_records
                  if x[rec.indicator.index] > 0.5]
        assert len(chosen) == 1
        assert chosen[0].job_id == "b"
        assert chosen[0].leaf.start == prev_start - 1
        assert compiled.model.check_feasible(x)

    def test_two_elapsed_quanta_shift_by_two(self):
        sched, prev_start = deferred_scheduler()
        if prev_start < 2:
            pytest.skip("workload did not defer far enough")
        sched.on_job_finished("a", 20.0)  # frees b's shifted slot
        compiled = compile_pending(sched, now=20.0)
        x = sched._build_warm_start(compiled, now=20.0)
        assert x is not None
        chosen = [rec for rec in compiled.leaf_records
                  if x[rec.indicator.index] > 0.5]
        assert chosen[0].leaf.start == prev_start - 2

    def test_stale_placement_dropped_when_shifted_past_now(self):
        """Enough elapsed time pushes the start below 0 -> dropped."""
        sched, prev_start = deferred_scheduler()
        late = (prev_start + 3) * sched.config.quantum_s
        compiled = compile_pending(sched, now=late)
        assert sched._build_warm_start(compiled, late) is None

    def test_backwards_clock_yields_no_seed(self):
        sched, _ = deferred_scheduler()
        compiled = compile_pending(sched, now=0.0)
        assert sched._build_warm_start(compiled, now=-10.0) is None

    def test_placement_dropped_when_supply_vanishes(self):
        """If the planned nodes are occupied past the shifted slot, the
        stale placement must not survive into the seed."""
        sched, prev_start = deferred_scheduler()
        # Swap the finishing job for a squatter that holds the whole
        # cluster far beyond b's shifted window.
        sched.on_job_finished("a", 10.0)
        sched.state.start("squatter", frozenset(sched.cluster.node_names),
                          10.0, 10_000.0)
        compiled = compile_pending(sched, now=10.0)
        x = sched._build_warm_start(compiled, now=10.0)
        if x is not None:  # a surviving seed must still be feasible
            assert compiled.model.check_feasible(x)
            chosen = [rec for rec in compiled.leaf_records
                      if x[rec.indicator.index] > 0.5]
            assert not chosen


class TestCacheAcrossSupplyChanges:
    def test_cached_scheduler_matches_uncached_across_cycles(self):
        """Differential test: the component cache must never change what
        the scheduler decides, even as launches/completions shift supply
        mid-window between cycles."""
        outcomes = {}
        for cached in (False, True):
            cluster = Cluster.build(racks=3, nodes_per_rack=4)
            sched = TetriSched(cluster, config(component_cache=cached))
            racks = {}
            for name in sorted(cluster.node_names):
                racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
            objectives, launched = [], []
            for c in range(4):
                now = c * 10.0
                if c < 2:  # arrivals in the first two cycles only
                    for i, (rack, nodes) in enumerate(sorted(racks.items())):
                        sched.submit(JobRequest(
                            job_id=f"c{c}-{rack}",
                            options=(SpaceOption(frozenset(nodes), k=2,
                                                 duration_s=20.0),),
                            value_fn=StepValue(10.0 + i + 5 * c, 1e9),
                            priority=PriorityClass.SLO_ACCEPTED,
                            submit_time=now))
                res = sched.run_cycle(now)
                objectives.append(res.stats.objective)
                launched.append(sorted(a.job_id for a in res.allocations))
                # Completions change the supply the next cycle sees.
                for alloc in list(sched.state.running_jobs):
                    if alloc.expected_end <= now:
                        sched.on_job_finished(alloc.job_id, now)
            outcomes[cached] = (objectives, launched)
        obj_plain, launched_plain = outcomes[False]
        obj_cached, launched_cached = outcomes[True]
        assert obj_cached == pytest.approx(obj_plain, abs=1e-9)
        assert launched_cached == launched_plain

    def test_cache_hits_accumulate_in_cycle_stats(self):
        cluster = Cluster.build(racks=2, nodes_per_rack=4)
        sched = TetriSched(cluster, config(component_cache=True,
                                           warm_start=False))
        assert sched._component_cache is not None
        racks = {}
        for name in sorted(cluster.node_names):
            racks.setdefault(name.rsplit("n", 1)[0], []).append(name)
        # Oversubscribe each rack so pending jobs persist across cycles
        # with unchanged per-rack components.
        for i, (rack, nodes) in enumerate(sorted(racks.items())):
            for j in range(3):
                sched.submit(JobRequest(
                    job_id=f"{rack}-j{j}",
                    options=(SpaceOption(frozenset(nodes), k=4,
                                         duration_s=40.0),),
                    value_fn=StepValue(10.0 + i + 0.3 * j, 1e9),
                    priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0))
        sched.run_cycle(0.0)
        total_lookups = (sched._component_cache.stats.hits
                        + sched._component_cache.stats.misses)
        assert total_lookups >= 2  # one lookup per component
        assert len(sched._component_cache) >= 1
