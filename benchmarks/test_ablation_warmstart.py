"""Ablation: warm-starting the solver from the previous cycle (Sec. 3.2.2).

"As the plan-ahead window shifts forward in time with each cycle, we cache
solver results to serve as a feasible initial solution for the next cycle's
solver invocation.  We find this optimization to be quite effective."

Measured with the pure-Python branch-and-bound backend (scipy/HiGHS has no
warm-start hook): B&B nodes explored on the second cycle with and without a
seed.  The seeded run must never explore more nodes, and the schedules must
launch the same jobs.
"""

import numpy as np
from conftest import save_and_print

from repro.cluster import Cluster
from repro.core import JobRequest, PriorityClass, TetriSched, TetriSchedConfig
from repro.core.compiler import StrlCompiler
from repro.experiments import format_table
from repro.solver import BranchBoundOptions, BranchBoundSolver
from repro.strl import SpaceOption
from repro.valuefn import StepValue


def build_scheduler(warm):
    cluster = Cluster.build(racks=2, nodes_per_rack=4, gpu_racks=1)
    cfg = TetriSchedConfig(quantum_s=10, cycle_s=10, plan_ahead_s=60,
                           backend="pure", rel_gap=1e-6, warm_start=warm)
    sched = TetriSched(cluster, cfg)
    for i in range(6):
        sched.submit(JobRequest(
            f"j{i}", options=(SpaceOption(cluster.node_names, k=4,
                                          duration_s=20),),
            value_fn=StepValue(1000.0, 400.0),
            priority=PriorityClass.SLO_ACCEPTED, submit_time=0.0,
            deadline=400.0))
    return sched


def second_cycle_nodes(warm: bool) -> tuple[int, int]:
    """(B&B nodes on cycle 2, jobs launched on cycle 2)."""
    sched = build_scheduler(warm)
    sched.run_cycle(0.0)
    # Recompile cycle 2 by hand so we can observe solver node counts.
    exprs = [(job_id, sched._generate(req, 10.0))
             for job_id, req in sched.queues.items()]
    compiled = StrlCompiler(sched.state, 10.0, 10.0).compile(exprs)
    seed = sched._build_warm_start(compiled, 10.0) if warm else None
    solver = BranchBoundSolver(BranchBoundOptions(rel_gap=1e-6))
    res = solver.solve(compiled.model, warm_start=seed)
    return res.nodes, res.objective


def test_warm_start_reduces_search(benchmark):
    def run():
        return second_cycle_nodes(True)

    warm_nodes, warm_obj = benchmark.pedantic(run, rounds=3, iterations=1)
    cold_nodes, cold_obj = second_cycle_nodes(False)

    text = ("Ablation: warm start from previous cycle (pure B&B backend)\n"
            + format_table(["configuration", "B&B nodes", "objective"],
                           [["warm-started", warm_nodes, warm_obj],
                            ["cold", cold_nodes, cold_obj]]))
    save_and_print("ablation_warmstart", text)

    assert warm_obj == cold_obj  # same schedule quality
    assert warm_nodes <= cold_nodes  # never a larger search
