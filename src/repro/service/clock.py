"""Injectable time sources for the scheduler service.

The service's cycle timer and job-completion bookkeeping never call
``time`` or ``asyncio.sleep`` directly — they go through a :class:`Clock`.
Production uses the real one; tests drive a :class:`FakeClock` whose
:meth:`~FakeClock.advance` releases sleepers deterministically, so a
"run cycles every 4 s for a minute" test finishes in milliseconds and
never flakes on wall-clock jitter.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time


class Clock:
    """Real time: monotonic now, asyncio sleep."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay_s: float) -> None:
        await asyncio.sleep(delay_s)


class FakeClock:
    """Manually-advanced time for deterministic service tests.

    ``sleep`` parks the caller on a heap keyed by absolute wake time;
    :meth:`advance` moves time forward and releases every sleeper whose
    deadline passed, in deadline order.  Both must run on the same event
    loop thread (the natural shape of an asyncio test).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._counter = itertools.count()  # FIFO tie-break for equal deadlines
        self._waiters: list[tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    async def sleep(self, delay_s: float) -> None:
        if delay_s <= 0:
            return
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(self._waiters,
                       (self._now + delay_s, next(self._counter), fut))
        await fut

    def advance(self, delta_s: float) -> int:
        """Move time forward; returns how many sleepers woke."""
        if delta_s < 0:
            raise ValueError("cannot advance time backwards")
        self._now += delta_s
        woken = 0
        while self._waiters and self._waiters[0][0] <= self._now + 1e-12:
            _, _, fut = heapq.heappop(self._waiters)
            if not fut.done():
                fut.set_result(None)
                woken += 1
        return woken

    @property
    def sleepers(self) -> int:
        """Tasks currently parked in :meth:`sleep`."""
        return sum(1 for _, _, fut in self._waiters if not fut.done())


__all__ = ["Clock", "FakeClock"]
