#!/usr/bin/env python3
"""Quickstart: the paper's Sec. 5.1 example, end to end.

Three jobs arrive on a 3-machine cluster:

1. a short, urgent job — 2 machines for 10 s, deadline 10 s;
2. a long, small job — 1 machine for 20 s, deadline 40 s;
3. a short, large job — 3 machines for 10 s, deadline 20 s.

Only *global scheduling with plan-ahead* meets all three deadlines: job 1
must run now, job 3 at t=10, job 2 at t=20 (Fig. 4).  This script submits
the jobs to TetriSched and prints the schedule it actually produces.

Run:  python examples/quickstart.py
"""

from repro import (Cluster, JobRequest, PriorityClass, SpaceOption,
                   TetriSched, TetriSchedConfig)
from repro.valuefn import StepValue


def main() -> None:
    cluster = Cluster.build(racks=1, nodes_per_rack=3)
    sched = TetriSched(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=30, backend="auto",
        rel_gap=1e-6))

    everything = cluster.node_names
    jobs = [
        ("short-urgent", 2, 10, 10),   # k, runtime, deadline
        ("long-small", 1, 20, 40),
        ("short-large", 3, 10, 20),
    ]
    for name, k, runtime, deadline in jobs:
        sched.submit(JobRequest(
            job_id=name,
            options=(SpaceOption(everything, k=k, duration_s=runtime),),
            value_fn=StepValue(1000.0, deadline),
            priority=PriorityClass.SLO_ACCEPTED,
            submit_time=0.0, deadline=float(deadline)))

    print("t=0s cycle:")
    now = 0.0
    finished: list[tuple[str, float]] = []
    running: dict[str, float] = {}
    while sched.pending_count or running:
        # Complete anything due before/at this cycle.
        for job_id, end in sorted(running.items(), key=lambda kv: kv[1]):
            if end <= now:
                sched.on_job_finished(job_id, end)
                finished.append((job_id, end))
                del running[job_id]
        result = sched.run_cycle(now)
        for alloc in result.allocations:
            print(f"  t={now:>4.0f}s  launch {alloc.job_id:<13s} on "
                  f"{sorted(alloc.nodes)} until t={alloc.expected_end:.0f}s")
            running[alloc.job_id] = alloc.expected_end
        now += sched.config.cycle_s
        if now > 100:
            break

    for job_id, end in sorted(running.items(), key=lambda kv: kv[1]):
        finished.append((job_id, end))
    print("\nCompletions:")
    deadline_of = {name: d for name, _, _, d in jobs}
    for job_id, end in sorted(finished, key=lambda kv: kv[1]):
        status = "MET" if end <= deadline_of[job_id] else "MISSED"
        print(f"  {job_id:<13s} finished t={end:>3.0f}s "
              f"(deadline {deadline_of[job_id]:>2d}s) -> {status}")


if __name__ == "__main__":
    main()
