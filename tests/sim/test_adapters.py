"""Tests for the TetriSched simulator adapter."""

import pytest

from repro.cluster import Cluster
from repro.core import PriorityClass, TetriSchedConfig
from repro.sim import GpuType, Job, TetriSchedAdapter, UnconstrainedType

UN = UnconstrainedType()


@pytest.fixture()
def adapter():
    cluster = Cluster.build(racks=2, nodes_per_rack=2, gpu_racks=1)
    return TetriSchedAdapter(cluster, TetriSchedConfig(
        quantum_s=10, cycle_s=10, plan_ahead_s=40))


class TestSubmission:
    def test_accepted_slo_priority_and_value(self, adapter):
        job = Job("s", UN, 2, 20, 0.0, deadline=100.0)
        adapter.submit(job, accepted=True, now=0.0)
        (job_id, req), = adapter.scheduler.queues.items()
        assert req.priority == PriorityClass.SLO_ACCEPTED
        assert req.value_fn(50.0) == 1000.0
        # Deadline grace: one quantum beyond the true deadline.
        assert req.deadline == pytest.approx(110.0)

    def test_rejected_slo_priority(self, adapter):
        job = Job("s", UN, 2, 20, 0.0, deadline=100.0)
        adapter.submit(job, accepted=False, now=0.0)
        (_, req), = adapter.scheduler.queues.items()
        assert req.priority == PriorityClass.SLO_NO_RESERVATION
        assert req.value_fn(50.0) == 25.0

    def test_best_effort_priority_and_decay(self, adapter):
        job = Job("b", UN, 1, 20, 5.0)
        adapter.submit(job, accepted=False, now=5.0)
        (_, req), = adapter.scheduler.queues.items()
        assert req.priority == PriorityClass.BEST_EFFORT
        assert req.deadline is None
        assert req.value_fn(5.0) > req.value_fn(500.0)

    def test_options_use_estimates(self, adapter):
        job = Job("g", GpuType(slowdown=2.0), 2, 20, 0.0, deadline=500.0,
                  estimate_error=0.5)
        adapter.submit(job, accepted=True, now=0.0)
        (_, req), = adapter.scheduler.queues.items()
        durations = sorted(o.duration_s for o in req.options)
        assert durations == [30.0, 60.0]  # 20*1.5 and 20*2*1.5


class TestLifecycle:
    def test_active_jobs_tracking(self, adapter):
        job = Job("a", UN, 2, 20, 0.0, deadline=200.0)
        adapter.submit(job, accepted=True, now=0.0)
        assert adapter.active_jobs == 1
        decisions = adapter.cycle(0.0)
        assert len(decisions.allocations) == 1
        assert adapter.active_jobs == 1  # running now
        adapter.job_finished("a", 20.0)
        assert adapter.active_jobs == 0

    def test_cycle_history_accessible(self, adapter):
        adapter.cycle(0.0)
        adapter.cycle(10.0)
        assert len(adapter.cycle_history) == 2
