"""Solve results and status codes shared by all solver backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Terminal status of a solve call."""

    OPTIMAL = "optimal"
    #: Feasible incumbent found but optimality not proven (gap/time/node limit).
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: Limit hit before any feasible solution was found.
    NO_SOLUTION = "no_solution"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class LPResult:
    """Result of a single LP relaxation solve."""

    status: SolveStatus
    x: np.ndarray | None
    objective: float  # in minimization orientation
    iterations: int = 0
    #: Terminal simplex basis (a :class:`repro.solver.revised_simplex.BasisState`)
    #: when the revised engine solved to optimality; lets branch-and-bound
    #: child nodes re-optimize with dual-simplex warm restarts.  ``None``
    #: for the tableau/scipy LP paths.
    basis: object | None = None
    #: Simplex multipliers for the caller's rows, ordered ``[ub rows;
    #: eq rows]``, in minimization orientation (``y_ub <= 0`` at
    #: optimality).  ``None`` when the engine could not recover them.
    duals: np.ndarray | None = None
    #: Reduced costs ``c - [a_ub; a_eq]^T @ duals`` per structural
    #: variable.  Bound duals are folded in: a nonbasic-at-lower variable
    #: has ``reduced_costs >= 0``, nonbasic-at-upper ``<= 0``.
    reduced_costs: np.ndarray | None = None
    #: Per-solve engine statistics (factorizations, Forrest–Tomlin
    #: updates, pricing-candidate volume, factor fill ratio).  ``None``
    #: for the tableau/scipy LP paths.
    stats: dict | None = None


@dataclass
class MILPResult:
    """Result of a MILP solve.

    Attributes
    ----------
    status:
        Terminal status.
    x:
        Incumbent point (dense, model column order) or ``None``.
    objective:
        Objective value *in the model's own sense* (maximize stays maximize).
    bound:
        Best proven dual bound in the model's sense (``objective <= bound``
        for maximization problems when status is FEASIBLE).
    gap:
        Relative optimality gap ``|bound - objective| / max(1, |objective|)``.
    nodes:
        Branch-and-bound nodes processed (0 for direct backends).
    solve_time:
        Wall-clock seconds in the backend.
    """

    status: SolveStatus
    x: np.ndarray | None
    objective: float
    bound: float = float("nan")
    gap: float = float("nan")
    nodes: int = 0
    solve_time: float = 0.0
    stats: dict = field(default_factory=dict)

    def value_of(self, var) -> float:
        """Value of a :class:`~repro.solver.expr.Variable` in the incumbent."""
        if self.x is None:
            raise ValueError("no solution available")
        return float(self.x[var.index])
