"""Tests for the bounded-variable revised simplex and its warm restarts.

Three families:

* unit tests on the engine itself — statuses, fixed variables, free
  variables, equality rows, counters;
* differential property tests pitting the revised simplex against the
  legacy dense tableau and scipy/HiGHS on random LPs mixing finite and
  infinite bounds (statuses first, objectives on OPTIMAL agreement);
* dual-simplex warm-restart tests: a branch-and-bound child node solving
  from its parent's basis must agree with a cold solve and (on the
  aggregate) take fewer simplex iterations.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.solver import (BranchBoundOptions, BranchBoundSolver, SolveStatus,
                          make_backend, scipy_available)
from repro.solver.revised_simplex import (BasisState, RevisedSimplexEngine,
                                          solve_lp_revised)
from repro.solver.simplex import solve_lp
from tests.strategies import milp_models, mixed_bound_lps

needs_scipy = pytest.mark.skipif(not scipy_available(),
                                 reason="scipy required")

INF = float("inf")


def _agree(a, b, tol=1e-6):
    assert a.status == b.status, (a.status, b.status)
    if a.status == SolveStatus.OPTIMAL:
        assert a.objective == pytest.approx(b.objective, abs=tol,
                                            rel=tol)


class TestEngineBasics:
    def test_simple_optimum(self):
        # max 3x + 2y s.t. x + y <= 4, x,y in [0, 3]  (as min of -obj)
        res = solve_lp_revised(
            c=np.array([-3.0, -2.0]), a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([4.0]), lb=np.zeros(2), ub=np.full(2, 3.0))
        assert res.status == SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-11.0)
        assert res.x == pytest.approx([3.0, 1.0])
        assert isinstance(res.basis, BasisState)

    def test_optimum_at_upper_bounds_no_pivots(self):
        # Unconstrained by rows: optimum sits at the bound box corner; the
        # bounded-variable form needs no ub rows and no pivots at all.
        res = solve_lp_revised(
            c=np.array([-1.0, 1.0]), a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([100.0]), lb=np.zeros(2), ub=np.array([7.0, 9.0]))
        assert res.status == SolveStatus.OPTIMAL
        assert res.x == pytest.approx([7.0, 0.0])

    def test_infeasible(self):
        res = solve_lp_revised(
            c=np.array([1.0]), a_ub=np.array([[-1.0]]), b_ub=np.array([-5.0]),
            lb=np.zeros(1), ub=np.array([2.0]))
        assert res.status == SolveStatus.INFEASIBLE

    def test_crossed_bounds_infeasible(self):
        res = solve_lp_revised(c=np.array([1.0]), lb=np.array([3.0]),
                               ub=np.array([1.0]))
        assert res.status == SolveStatus.INFEASIBLE

    def test_unbounded_free_variable(self):
        res = solve_lp_revised(
            c=np.array([-3.0]), a_ub=np.array([[-3.0], [-2.0]]),
            b_ub=np.array([9.0, 6.0]), lb=np.array([-1.0]),
            ub=np.array([INF]))
        assert res.status == SolveStatus.UNBOUNDED

    def test_fixed_variables_and_equality_rows(self):
        # x fixed at 2 by its bounds, x + y == 5 forces y = 3.
        res = solve_lp_revised(
            c=np.array([0.0, 1.0]), a_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([5.0]), lb=np.array([2.0, 0.0]),
            ub=np.array([2.0, 10.0]))
        assert res.status == SolveStatus.OPTIMAL
        assert res.x == pytest.approx([2.0, 3.0])

    def test_counters_accumulate(self):
        eng = RevisedSimplexEngine(
            np.array([-3.0, -2.0]), np.array([[1.0, 1.0]]), np.array([4.0]),
            None, None)
        eng.solve(np.zeros(2), np.full(2, 3.0))
        assert eng.counters["pivots"] > 0
        assert eng.counters["warm_restarts"] == 0


class TestRevisedVsTableauVsScipy:
    @settings(max_examples=60, deadline=None)
    @given(lp=mixed_bound_lps())
    def test_matches_legacy_tableau(self, lp):
        _agree(solve_lp_revised(**lp), solve_lp(**lp))

    @needs_scipy
    @settings(max_examples=60, deadline=None)
    @given(lp=mixed_bound_lps())
    def test_matches_scipy(self, lp):
        from repro.solver.scipy_backend import solve_lp_scipy
        _agree(solve_lp_revised(**lp), solve_lp_scipy(**lp))


class TestDualWarmRestart:
    def _engine(self):
        # max x + 2y + 3z over a small polytope with integral-unfriendly
        # vertex, so bound tightening actually moves the optimum.
        c = np.array([-1.0, -2.0, -3.0])
        a_ub = np.array([[2.0, 1.0, 1.0],
                         [1.0, 3.0, 2.0],
                         [2.0, 1.0, 3.0]])
        b_ub = np.array([7.0, 9.0, 11.0])
        return RevisedSimplexEngine(c, a_ub, b_ub, None, None), c, a_ub, b_ub

    def test_child_agrees_with_cold_solve(self):
        eng, c, a_ub, b_ub = self._engine()
        lb, ub = np.zeros(3), np.full(3, 5.0)
        parent = eng.solve(lb, ub)
        assert parent.status == SolveStatus.OPTIMAL
        ub_child = ub.copy()
        ub_child[1] = np.floor(parent.x[1])  # branch down on y
        warm = eng.solve(lb, ub_child, start=parent.basis)
        cold = RevisedSimplexEngine(c, a_ub, b_ub, None, None).solve(
            lb, ub_child)
        _agree(warm, cold, tol=1e-9)
        assert eng.counters["warm_restarts"] == 1
        assert eng.counters["warm_hits"] == 1
        # The warm path refactorizes the inherited basis before pivoting.
        assert eng.counters["refactorizations"] >= 1

    def test_child_solves_in_fewer_iterations_than_cold(self):
        # Aggregate over seeded random child-node solves: the dual restart
        # re-optimizes in a handful of pivots while a cold solve pays
        # phase 1 + phase 2 from the slack basis every time.
        rng = np.random.default_rng(11)
        warm_total = cold_total = dual_pivots = compared = 0
        while compared < 25:
            n = int(rng.integers(3, 7))
            m_rows = int(rng.integers(2, 5))
            c = rng.integers(-5, 0, n).astype(float)
            a_ub = rng.integers(0, 4, (m_rows, n)).astype(float)
            b_ub = rng.integers(4, 15, m_rows).astype(float)
            lb, ub = np.zeros(n), np.full(n, 5.0)
            eng = RevisedSimplexEngine(c, a_ub, b_ub, None, None)
            parent = eng.solve(lb, ub)
            if parent.status != SolveStatus.OPTIMAL:
                continue
            frac = np.nonzero(np.abs(parent.x - np.round(parent.x))
                              > 1e-6)[0]
            if frac.size == 0:
                continue
            j = int(frac[0])
            ub_child = ub.copy()
            ub_child[j] = np.floor(parent.x[j])
            warm = eng.solve(lb, ub_child, start=parent.basis)
            cold = RevisedSimplexEngine(c, a_ub, b_ub, None, None).solve(
                lb, ub_child)
            _agree(warm, cold, tol=1e-9)
            warm_total += warm.iterations
            cold_total += cold.iterations
            dual_pivots += eng.counters["dual_pivots"]
            compared += 1
        assert warm_total < cold_total
        assert dual_pivots >= 1

    def test_stale_basis_falls_back_to_cold(self):
        eng, *_ = self._engine()
        lb, ub = np.zeros(3), np.full(3, 5.0)
        # A basis whose shape doesn't match the engine: must not crash,
        # must produce the same answer via the cold path.
        junk = BasisState(basic=np.array([0]),
                          vstat=np.array([2], dtype=np.int8))
        res = eng.solve(lb, ub, start=junk)
        assert res.status == SolveStatus.OPTIMAL
        assert eng.counters["cold_fallbacks"] == 1
        assert res.objective == pytest.approx(
            eng.solve(lb, ub).objective, abs=1e-9)


class TestBranchBoundEngines:
    @settings(max_examples=25, deadline=None)
    @given(model=milp_models())
    def test_revised_and_tableau_backends_agree(self, model):
        rev = BranchBoundSolver(
            BranchBoundOptions(lp_engine="revised")).solve(model)
        tab = BranchBoundSolver(
            BranchBoundOptions(lp_engine="tableau")).solve(model)
        assert rev.status == tab.status
        if rev.status == SolveStatus.OPTIMAL:
            assert rev.objective == pytest.approx(tab.objective, abs=1e-6)

    def test_pure_tableau_backend_name(self):
        backend = make_backend("pure-tableau")
        assert backend.options.lp_engine == "tableau"
        assert make_backend("pure").options.lp_engine == "revised"

    def test_unknown_engine_rejected(self):
        from repro.errors import SolverError
        from repro.solver.model import Model
        m = Model()
        x = m.add_integer("x", ub=3)
        m.set_objective(1 * x, sense="maximize")
        with pytest.raises(SolverError, match="lp_engine"):
            BranchBoundSolver(
                BranchBoundOptions(lp_engine="bogus")).solve(m)

    def test_search_stats_carry_engine_counters(self):
        from repro.solver.model import Model
        m = Model()
        xs = [m.add_integer(f"x{i}", ub=7) for i in range(4)]
        m.add_constraint(sum(3 * x for x in xs), "<=", 17)
        m.add_constraint(2 * xs[0] + 5 * xs[1] + xs[2], "<=", 11)
        m.set_objective(2 * xs[0] + 3 * xs[1] + 5 * xs[2] + 7 * xs[3],
                        sense="maximize")
        res = BranchBoundSolver(BranchBoundOptions(presolve=False)).solve(m)
        assert res.status == SolveStatus.OPTIMAL
        for key in ("lp_dual_pivots", "lp_refactorizations",
                    "lp_warm_restarts", "lp_warm_hits",
                    "lp_cold_fallbacks"):
            assert key in res.stats
