"""Tests for metrics aggregation."""

import math

import numpy as np
import pytest

from repro.sim import JobOutcome, LatencyTrace, MetricsCollector


def outcome(job_id, is_slo=True, accepted=True, submit=0.0, deadline=100.0,
            finish=None, **kw):
    return JobOutcome(job_id=job_id, is_slo=is_slo, accepted=accepted,
                      submit_time=submit,
                      deadline=deadline if is_slo else None,
                      finish_time=finish, **kw)


class TestJobOutcome:
    def test_met_deadline(self):
        assert outcome("a", finish=90.0).met_deadline
        assert not outcome("a", finish=110.0).met_deadline
        assert not outcome("a").met_deadline  # never completed

    def test_be_never_counts_as_slo(self):
        o = outcome("b", is_slo=False, finish=10.0)
        assert not o.met_deadline

    def test_slo_without_deadline_is_a_miss(self):
        """Regression: a completed SLO job with no deadline used to raise
        TypeError (None <= float); it must simply count as a miss."""
        o = outcome("s", deadline=None, finish=10.0)
        assert o.met_deadline is False

    def test_latency(self):
        assert outcome("a", submit=5.0, finish=25.0).latency == 20.0
        assert outcome("a").latency is None


class TestMetricsCollector:
    def test_duplicate_registration_rejected(self):
        mc = MetricsCollector()
        mc.register(outcome("a"))
        with pytest.raises(ValueError):
            mc.register(outcome("a"))

    def test_report_partitions_jobs(self):
        mc = MetricsCollector()
        mc.register(outcome("s1", accepted=True, finish=50.0))    # hit
        mc.register(outcome("s2", accepted=True, finish=150.0))   # miss
        mc.register(outcome("s3", accepted=False, finish=50.0))   # hit, no-res
        mc.register(outcome("s4", accepted=False))                # never ran
        mc.register(outcome("b1", is_slo=False, finish=30.0))
        mc.register(outcome("b2", is_slo=False, submit=10.0, finish=50.0))
        r = mc.report()
        assert r.jobs_total == 6
        assert r.jobs_slo == 4
        assert r.jobs_accepted == 2
        assert r.jobs_best_effort == 2
        assert r.slo_accepted_pct == pytest.approx(50.0)
        assert r.slo_no_reservation_pct == pytest.approx(50.0)
        assert r.slo_total_pct == pytest.approx(50.0)
        assert r.mean_be_latency_s == pytest.approx(35.0)

    def test_empty_groups_are_nan(self):
        mc = MetricsCollector()
        mc.register(outcome("b", is_slo=False, accepted=False, finish=10.0))
        r = mc.report()
        assert math.isnan(r.slo_total_pct)
        assert math.isnan(r.slo_accepted_pct)

    def test_unfinished_be_excluded_from_latency(self):
        mc = MetricsCollector()
        mc.register(outcome("b1", is_slo=False, accepted=False, finish=10.0))
        mc.register(outcome("b2", is_slo=False, accepted=False))
        r = mc.report()
        assert r.mean_be_latency_s == pytest.approx(10.0)
        assert r.be_completed == 1

    def test_preemptions_counted(self):
        mc = MetricsCollector()
        mc.register(outcome("a", preemptions=2))
        mc.register(outcome("b", preemptions=1))
        assert mc.report().preemptions == 3


class TestLatencyTrace:
    def test_summary_stats(self):
        tr = LatencyTrace()
        for v in [0.1, 0.2, 0.3, 0.4]:
            tr.record(v, v / 2)
        s = tr.summary()
        assert s["cycle_mean"] == pytest.approx(0.25)
        assert s["solver_mean"] == pytest.approx(0.125)
        assert s["cycle_max"] == pytest.approx(0.4)

    def test_empty_summary_is_nan(self):
        s = LatencyTrace().summary()
        assert math.isnan(s["cycle_mean"])

    def test_cdf(self):
        tr = LatencyTrace()
        tr.record(0.3, 0.1)
        tr.record(0.1, 0.1)
        xs, fr = tr.cdf("cycle")
        np.testing.assert_allclose(xs, [0.1, 0.3])
        np.testing.assert_allclose(fr, [0.5, 1.0])

    def test_empty_cdf(self):
        xs, fr = LatencyTrace().cdf()
        assert xs.size == 0 and fr.size == 0

    def test_cdf_unknown_series_raises(self):
        """Regression: an unknown series name used to silently fall back to
        solver latencies instead of raising."""
        tr = LatencyTrace()
        tr.record(0.3, 0.1)
        with pytest.raises(ValueError, match="unknown latency series"):
            tr.cdf("typo")
