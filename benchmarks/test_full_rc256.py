"""Full-size RC256 run: the paper's actual 256-node topology, end to end.

The sweep benchmarks use scaled testbeds for speed; this bench runs one
complete GR MIX experiment on the real RC256 shape (8 racks x 32 nodes =
256 slaves, Sec. 6.1) under -50 % estimate error — the paper's hardest
regime — and asserts the headline result survives at full size:
TetriSched meets (almost) all accepted SLOs and stays within the paper's
4 s cycle budget.
"""

from conftest import save_and_print

from repro.experiments import ClusterSpec, RunSpec, format_table, run_experiment
from repro.workloads import GR_MIX

RC256_FULL = ClusterSpec(racks=8, nodes_per_rack=32)


def run(scheduler: str):
    return run_experiment(RunSpec(
        scheduler=scheduler, composition=GR_MIX, cluster=RC256_FULL,
        num_jobs=96, target_utilization=1.3, estimate_error=-0.5))


def test_full_rc256(benchmark):
    ts = benchmark.pedantic(lambda: run("TetriSched"), rounds=1,
                            iterations=1)
    cs = run("Rayon/CS")

    rows = []
    for r in (ts, cs):
        m = r.metrics
        lat = r.latency.summary()
        rows.append([r.scheduler_name, m.slo_total_pct,
                     m.slo_accepted_pct, m.mean_be_latency_s,
                     1000 * lat["cycle_mean"] if lat["cycle_mean"] == lat[
                         "cycle_mean"] else 0.0])
    text = ("Full-size RC256 (8x32 = 256 nodes), GR MIX, -50% estimates\n"
            + format_table(["stack", "SLO total %", "accepted %",
                            "BE latency (s)", "mean cycle (ms)"], rows))
    save_and_print("full_rc256", text)

    assert ts.metrics.slo_accepted_pct >= 95.0
    assert ts.metrics.slo_total_pct >= cs.metrics.slo_total_pct
    # Paper budget: decisions each 4 s cycle; we must stay well inside.
    assert ts.latency.summary()["cycle_mean"] < 4.0
