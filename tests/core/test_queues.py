"""Tests for the priority FIFO queues used by TetriSched-NG."""

import pytest

from repro.core import PriorityClass, PriorityQueues
from repro.errors import SchedulerError


class TestPriorityQueues:
    def test_priority_then_fifo_order(self):
        q = PriorityQueues()
        q.push("be1", PriorityClass.BEST_EFFORT, 1)
        q.push("slo1", PriorityClass.SLO_ACCEPTED, 2)
        q.push("nores1", PriorityClass.SLO_NO_RESERVATION, 3)
        q.push("slo2", PriorityClass.SLO_ACCEPTED, 4)
        assert q.job_ids() == ["slo1", "slo2", "nores1", "be1"]

    def test_remove(self):
        q = PriorityQueues()
        q.push("a", PriorityClass.BEST_EFFORT, "payload")
        assert q.remove("a") == "payload"
        assert "a" not in q
        assert len(q) == 0

    def test_remove_missing_raises(self):
        q = PriorityQueues()
        with pytest.raises(SchedulerError):
            q.remove("ghost")

    def test_duplicate_push_rejected(self):
        q = PriorityQueues()
        q.push("a", PriorityClass.BEST_EFFORT, 1)
        with pytest.raises(SchedulerError):
            q.push("a", PriorityClass.SLO_ACCEPTED, 2)

    def test_counts(self):
        q = PriorityQueues()
        q.push("a", PriorityClass.BEST_EFFORT, 1)
        q.push("b", PriorityClass.BEST_EFFORT, 1)
        q.push("c", PriorityClass.SLO_ACCEPTED, 1)
        counts = q.counts()
        assert counts[PriorityClass.BEST_EFFORT] == 2
        assert counts[PriorityClass.SLO_ACCEPTED] == 1
        assert counts[PriorityClass.SLO_NO_RESERVATION] == 0

    def test_priority_ordering_values(self):
        assert PriorityClass.SLO_ACCEPTED < PriorityClass.SLO_NO_RESERVATION
        assert PriorityClass.SLO_NO_RESERVATION < PriorityClass.BEST_EFFORT
