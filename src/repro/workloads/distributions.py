"""Seeded random distributions for workload generation.

A thin wrapper over ``numpy.random.Generator`` that keeps every experiment
deterministic (seed in, same workload out) and centralizes the distribution
shapes used by the SWIM-derived and synthetic generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


class Rng:
    """Deterministic random source for one workload."""

    def __init__(self, seed: int) -> None:
        self._gen = np.random.default_rng(seed)

    def uniform(self, lo: float, hi: float) -> float:
        return float(self._gen.uniform(lo, hi))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def gamma_gap(self, mean: float, cv: float) -> float:
        """Arrival gap with a chosen coefficient of variation.

        ``cv = 1`` is exponential (Poisson arrivals); ``cv > 1`` is bursty
        (the companion TR sweeps inter-arrival burstiness).  Implemented as
        a Gamma distribution with shape ``1/cv**2`` and matching mean.
        """
        if cv <= 0:
            raise WorkloadError("cv must be positive")
        shape = 1.0 / (cv * cv)
        scale = mean / shape
        return float(self._gen.gamma(shape, scale))

    def lognormal(self, median: float, sigma: float) -> float:
        """Lognormal parameterized by its median (exp(mu)) and shape sigma."""
        return float(self._gen.lognormal(np.log(median), sigma))

    def integer(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return int(self._gen.integers(lo, hi + 1))

    def choice(self, options, probabilities=None):
        idx = self._gen.choice(len(options), p=probabilities)
        return options[int(idx)]

    def bernoulli(self, p: float) -> bool:
        return bool(self._gen.random() < p)


@dataclass(frozen=True)
class BoundedLogNormal:
    """Lognormal clipped to [lo, hi] — heavy-tailed but sim-friendly.

    SWIM's published MapReduce characterizations (Facebook/Yahoo production
    traces) show strongly skewed job sizes and durations; we reproduce the
    skew with clipped lognormals.
    """

    median: float
    sigma: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo <= self.median <= self.hi):
            raise WorkloadError(
                f"median {self.median} outside bounds [{self.lo}, {self.hi}]")
        if self.sigma < 0:
            raise WorkloadError("sigma must be nonnegative")

    def sample(self, rng: Rng) -> float:
        return float(np.clip(rng.lognormal(self.median, self.sigma),
                             self.lo, self.hi))


@dataclass(frozen=True)
class UniformInt:
    """Uniform integer distribution, inclusive of both bounds."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi or self.lo < 1:
            raise WorkloadError(f"bad integer range [{self.lo}, {self.hi}]")

    def sample(self, rng: Rng) -> int:
        return rng.integer(self.lo, self.hi)


@dataclass(frozen=True)
class UniformFloat:
    """Uniform float distribution over [lo, hi]."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise WorkloadError(f"bad range [{self.lo}, {self.hi}]")

    def sample(self, rng: Rng) -> float:
        return rng.uniform(self.lo, self.hi)
