"""Gridmix-style workload generator (Sec. 6.4).

"We use a synthetic generator based on Gridmix 3 to generate MapReduce jobs
that respect the runtime parameter distributions for arrival time, job
count, size, deadline, and task runtime.  In all experiments, we adjust the
load to utilize near 100 % of the available cluster capacity."

The generator samples gang sizes / runtimes / deadline slacks from a
:class:`~repro.workloads.compositions.WorkloadComposition`, then paces
Poisson arrivals so the *offered load* (node-seconds demanded per second)
matches ``target_utilization`` of cluster capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import WorkloadError
from repro.sim.jobs import (ElasticType, GpuType, Job, MpiType,
                            UnconstrainedType)
from repro.workloads.compositions import WorkloadComposition
from repro.workloads.distributions import Rng

#: Placement-preference implementations by type name.  The slowdown factor
#: follows the paper's examples (Fig. 1: GPU/MPI jobs run 3 time units
#: instead of 2 on sub-optimal placements -> 1.5x).
JOB_TYPES = {
    "unconstrained": UnconstrainedType(),
    "gpu": GpuType(slowdown=1.5),
    "mpi": MpiType(slowdown=1.5),
}


@dataclass(frozen=True)
class GridmixConfig:
    """Knobs for one generated workload."""

    num_jobs: int = 60
    target_utilization: float = 1.0
    #: Relative runtime mis-estimation applied to every job (Sec. 6.3 sweep).
    estimate_error: float = 0.0
    #: Coefficient of variation of arrival gaps: 1.0 = Poisson, >1 = bursty
    #: (the companion TR sweeps inter-arrival burstiness).
    burstiness: float = 1.0
    #: Sub-optimal-placement slowdown for GPU/MPI jobs (the companion TR
    #: sweeps this heterogeneity intensity; 1.0 = homogeneous cluster).
    slowdown: float = 1.5
    #: Fraction of best-effort jobs generated as malleable elastic gangs
    #: (Sec. 4.1 space-time elasticity); they run rigidly unless the
    #: scheduler enables ``elastic_mode``.
    elastic_fraction: float = 0.0
    #: Scaling efficiency of generated elastic gangs (<1 = imperfect).
    elastic_efficiency: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise WorkloadError("num_jobs must be positive")
        if self.target_utilization <= 0:
            raise WorkloadError("target_utilization must be positive")
        if self.estimate_error <= -1.0:
            raise WorkloadError("estimate_error must be > -100%")
        if self.burstiness <= 0:
            raise WorkloadError("burstiness must be positive")
        if self.slowdown < 1.0:
            raise WorkloadError("slowdown must be >= 1")
        if not 0.0 <= self.elastic_fraction <= 1.0:
            raise WorkloadError("elastic_fraction must be in [0, 1]")
        if not 0.0 < self.elastic_efficiency <= 1.0:
            raise WorkloadError("elastic_efficiency must be in (0, 1]")


def generate_workload(composition: WorkloadComposition, cluster: Cluster,
                      config: GridmixConfig) -> list[Job]:
    """Generate one deterministic workload.

    Jobs are named ``slo<N>`` / ``be<N>``.  Gang sizes are capped at the
    cluster size (and, for MPI jobs, at the largest rack so the rack-local
    preference stays satisfiable).
    """
    rng = Rng(config.seed)
    job_types = {
        "unconstrained": UnconstrainedType(),
        "gpu": GpuType(slowdown=config.slowdown),
        "mpi": MpiType(slowdown=config.slowdown),
    }
    capacity = len(cluster)
    max_rack = max(len(cluster.rack_nodes(r)) for r in cluster.rack_names)

    type_names = sorted(composition.slo_type_mix)
    type_probs = [composition.slo_type_mix[t] for t in type_names]

    # -- sample job shapes first (sizes, runtimes, classes) ------------------
    drafts = []
    slo_target = composition.slo_fraction
    for i in range(config.num_jobs):
        # Deterministic class interleaving keeps the realized mix close to
        # the target even for small workloads.
        already_slo = sum(1 for d in drafts if d["is_slo"])
        is_slo = (already_slo < slo_target * (i + 1) - 1e-9) or (
            slo_target >= 1.0)
        spec = composition.slo_class if is_slo else composition.be_class
        elastic = False
        if is_slo:
            type_name = rng.choice(type_names, type_probs)
        else:
            type_name = "unconstrained"  # BE jobs are always unconstrained
            # Same deterministic interleave as the SLO mix: the realized
            # elastic share of BE jobs tracks the target even when few
            # BE jobs are drawn.
            n_be = sum(1 for d in drafts if not d["is_slo"]) + 1
            already = sum(1 for d in drafts if d["elastic"])
            elastic = (already
                       < config.elastic_fraction * n_be - 1e-9) or (
                config.elastic_fraction >= 1.0)
        k = spec.gang_size.sample(rng)
        k = min(k, capacity if type_name != "mpi" else max_rack)
        runtime = spec.runtime_s.sample(rng)
        drafts.append(dict(is_slo=is_slo, type_name=type_name, k=k,
                           runtime=runtime, elastic=elastic,
                           slack=spec.deadline_slack.sample(rng)))

    # -- pace arrivals to hit the utilization target --------------------------
    mean_work = float(np.mean([d["k"] * d["runtime"] for d in drafts]))
    arrival_rate = capacity * config.target_utilization / mean_work
    mean_gap = 1.0 / arrival_rate

    jobs: list[Job] = []
    t = 0.0
    slo_counter = be_counter = 0
    for d in drafts:
        t += rng.gamma_gap(mean_gap, config.burstiness)
        if d["is_slo"]:
            job_id = f"slo{slo_counter}"
            slo_counter += 1
            deadline = t + d["slack"] * d["runtime"]
        else:
            job_id = f"be{be_counter}"
            be_counter += 1
            deadline = None
        if d["elastic"]:
            # A malleable gang: any width from roughly a third of the
            # preferred parallelism up to the full gang size.
            job_type: UnconstrainedType | ElasticType = ElasticType(
                min_k=max(1, d["k"] // 3),
                efficiency=config.elastic_efficiency)
        else:
            job_type = job_types[d["type_name"]]
        jobs.append(Job(
            job_id=job_id, job_type=job_type, k=d["k"],
            base_runtime_s=d["runtime"], submit_time=t, deadline=deadline,
            estimate_error=config.estimate_error))
    return jobs


def offered_load(jobs: list[Job], cluster: Cluster) -> float:
    """Realized offered load as a fraction of cluster capacity.

    ``sum(k * runtime) / (capacity * makespan_window)`` where the window is
    the arrival span plus one mean runtime (so single-job workloads don't
    divide by zero).
    """
    if not jobs:
        return 0.0
    work = sum(j.k * j.base_runtime_s for j in jobs)
    first = min(j.submit_time for j in jobs)
    last = max(j.submit_time for j in jobs)
    mean_runtime = work / sum(j.k for j in jobs)
    window = (last - first) + mean_runtime
    return work / (len(cluster) * window)
